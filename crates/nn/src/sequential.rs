//! A sequential container of layers.

use crate::layer::Layer;
use crate::Result;
use fedft_tensor::Matrix;

/// An ordered stack of layers applied one after another.
///
/// `Sequential` is used both directly (for simple models) and as the building
/// block of [`crate::BlockNet`], which groups several `Sequential` stacks into
/// the paper's low / mid / up / classifier layer groups.
#[derive(Clone, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field(
                "layers",
                &self.layers.iter().map(|l| l.name()).collect::<Vec<_>>(),
            )
            .field("parameters", &self.parameter_count())
            .finish()
    }
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer, returning `self` for chaining.
    pub fn push(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends a layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the container.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the forward pass through every layer.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error encountered.
    pub fn forward(&mut self, input: &Matrix, training: bool) -> Result<Matrix> {
        let mut current = input.clone();
        for layer in &mut self.layers {
            current = layer.forward(&current, training)?;
        }
        Ok(current)
    }

    /// Runs the inference forward pass through every layer via a shared
    /// reference, without caching activations for a backward pass.
    ///
    /// Used for frozen blocks ([`crate::BlockNet::forward_frozen`]); see
    /// [`crate::Layer::forward_frozen`] for the exact semantics.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error encountered.
    pub fn forward_frozen(&self, input: &Matrix) -> Result<Matrix> {
        let mut current = input.clone();
        for layer in &self.layers {
            current = layer.forward_frozen(&current)?;
        }
        Ok(current)
    }

    /// Runs the frozen forward pass over a batch of independent inputs,
    /// layer-major: each layer processes the whole batch before the next
    /// layer starts, so layers with shared parameters (dense) amortise their
    /// packing across the batch ([`crate::Layer::forward_frozen_batch`]).
    /// Every output is bit-identical to [`Sequential::forward_frozen`] on the
    /// corresponding input.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error encountered.
    pub fn forward_frozen_batch(&self, inputs: &[&Matrix]) -> Result<Vec<Matrix>> {
        let Some((first, rest)) = self.layers.split_first() else {
            return Ok(inputs.iter().map(|&m| m.clone()).collect());
        };
        let mut current = first.forward_frozen_batch(inputs)?;
        for layer in rest {
            let refs: Vec<&Matrix> = current.iter().collect();
            current = layer.forward_frozen_batch(&refs)?;
        }
        Ok(current)
    }

    /// Runs the backward pass through every layer in reverse order.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error encountered.
    pub fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix> {
        let mut current = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            current = layer.backward(&current)?;
        }
        Ok(current)
    }

    /// Immutable views of all parameters, layer by layer.
    pub fn params(&self) -> Vec<&Matrix> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Mutable views of all parameters, in the same order as
    /// [`Sequential::params`].
    pub fn params_mut(&mut self) -> Vec<&mut Matrix> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Gradients of all parameters, in the same order as
    /// [`Sequential::params`].
    pub fn grads(&self) -> Vec<&Matrix> {
        self.layers.iter().flat_map(|l| l.grads()).collect()
    }

    /// Zeros all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Total number of learnable scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.parameter_count()).sum()
    }

    /// Estimated forward FLOPs for one sample.
    pub fn forward_flops_per_sample(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.forward_flops_per_sample())
            .sum()
    }

    /// Estimated backward FLOPs for one sample.
    pub fn backward_flops_per_sample(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.backward_flops_per_sample())
            .sum()
    }

    /// Names of the contained layers, in order.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::loss::SoftmaxCrossEntropy;

    fn tiny_net(seed: u64) -> Sequential {
        Sequential::new()
            .push(Box::new(Dense::new(4, 8, seed)))
            .push(Box::new(Relu::new(8)))
            .push(Box::new(Dense::new(8, 3, seed + 1)))
    }

    #[test]
    fn forward_shapes_flow_through() {
        let mut net = tiny_net(0);
        let y = net.forward(&Matrix::zeros(5, 4), true).unwrap();
        assert_eq!(y.shape(), (5, 3));
    }

    #[test]
    fn parameter_accounting() {
        let net = tiny_net(0);
        assert_eq!(net.parameter_count(), 4 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(net.params().len(), 4);
        assert_eq!(net.layer_names(), vec!["dense", "relu", "dense"]);
        assert!(net.forward_flops_per_sample() > 0);
        assert!(net.backward_flops_per_sample() > net.forward_flops_per_sample());
    }

    #[test]
    fn clone_is_independent() {
        let mut net = tiny_net(1);
        let mut cloned = net.clone();
        let x = Matrix::full(2, 4, 1.0);
        let before = cloned.forward(&x, false).unwrap();
        // Train the original a little; the clone must not change.
        let loss = SoftmaxCrossEntropy::new();
        for _ in 0..5 {
            let logits = net.forward(&x, true).unwrap();
            let (_, grad) = loss.forward_backward(&logits, &[0, 1]).unwrap();
            net.zero_grads();
            net.backward(&grad).unwrap();
            let grads: Vec<Matrix> = net.grads().iter().map(|g| (*g).clone()).collect();
            for (p, g) in net.params_mut().into_iter().zip(grads.iter()) {
                p.add_scaled_assign(g, -0.5).unwrap();
            }
        }
        let after = cloned.forward(&x, false).unwrap();
        assert!(before.approx_eq(&after, 0.0));
    }

    #[test]
    fn training_reduces_loss_on_toy_problem() {
        let mut net = tiny_net(7);
        let loss = SoftmaxCrossEntropy::new();
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0],
        ])
        .unwrap();
        let labels = [0usize, 1, 2];
        let initial = loss
            .loss(&net.forward(&x, false).unwrap(), &labels)
            .unwrap();
        for _ in 0..200 {
            let logits = net.forward(&x, true).unwrap();
            let (_, grad) = loss.forward_backward(&logits, &labels).unwrap();
            net.zero_grads();
            net.backward(&grad).unwrap();
            let grads: Vec<Matrix> = net.grads().iter().map(|g| (*g).clone()).collect();
            for (p, g) in net.params_mut().into_iter().zip(grads.iter()) {
                p.add_scaled_assign(g, -0.5).unwrap();
            }
        }
        let trained = loss
            .loss(&net.forward(&x, false).unwrap(), &labels)
            .unwrap();
        assert!(
            trained < initial * 0.5,
            "training did not reduce loss: {initial} -> {trained}"
        );
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut net = Sequential::new();
        assert!(net.is_empty());
        let x = Matrix::full(2, 3, 4.0);
        assert!(net.forward(&x, true).unwrap().approx_eq(&x, 0.0));
        assert!(net.backward(&x).unwrap().approx_eq(&x, 0.0));
    }
}
