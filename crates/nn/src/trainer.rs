//! Centralised (non-federated) training loop.
//!
//! Used in two places of the reproduction: pretraining the global model on
//! the source domain before federated learning starts, and the "Centralised"
//! upper-bound baseline of Tables II and IV.

use crate::block::BlockNet;
use crate::freeze::FreezeLevel;
use crate::optimizer::{Sgd, SgdConfig};
use crate::{NnError, Result};
use fedft_tensor::{rng, Matrix};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Configuration of the centralised trainer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optimiser hyper-parameters.
    pub sgd: SgdConfig,
    /// Which part of the model to train.
    pub freeze: FreezeLevel,
    /// Seed controlling batch shuffling.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            epochs: 5,
            batch_size: 32,
            sgd: SgdConfig::default(),
            freeze: FreezeLevel::Full,
            seed: 0,
        }
    }
}

impl TrainerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero epochs or batch size, or
    /// an invalid optimiser configuration.
    pub fn validate(&self) -> Result<()> {
        if self.epochs == 0 {
            return Err(NnError::InvalidConfig {
                what: "epochs must be non-zero".into(),
            });
        }
        if self.batch_size == 0 {
            return Err(NnError::InvalidConfig {
                what: "batch_size must be non-zero".into(),
            });
        }
        self.sgd.validate()
    }
}

/// Evaluation summary produced by [`Trainer::evaluate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// Mean cross-entropy loss.
    pub loss: f32,
    /// Number of evaluated samples.
    pub samples: usize,
}

/// Mini-batch SGD trainer for a [`BlockNet`].
///
/// # Example
///
/// ```
/// use fedft_nn::{BlockNet, BlockNetConfig, Trainer, TrainerConfig};
/// use fedft_tensor::Matrix;
///
/// # fn main() -> Result<(), fedft_nn::NnError> {
/// let mut net = BlockNet::new(&BlockNetConfig::new(4, 2).with_hidden(8, 8, 8), 0);
/// let x = Matrix::from_rows(&[vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 0.0, 0.0, 1.0]]).unwrap();
/// let trainer = Trainer::new(TrainerConfig { epochs: 20, ..Default::default() })?;
/// trainer.fit(&mut net, &x, &[0, 1])?;
/// let report = trainer.evaluate(&mut net, &x, &[0, 1])?;
/// assert!(report.accuracy >= 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when the configuration is invalid.
    pub fn new(config: TrainerConfig) -> Result<Self> {
        config.validate()?;
        Ok(Trainer { config })
    }

    /// The trainer configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Trains `model` on `(features, labels)` and returns the mean training
    /// loss of the final epoch.
    ///
    /// # Errors
    ///
    /// Returns an error when the data is empty or inconsistent with the
    /// model.
    pub fn fit(&self, model: &mut BlockNet, features: &Matrix, labels: &[usize]) -> Result<f32> {
        if features.rows() == 0 || features.rows() != labels.len() {
            return Err(NnError::InvalidConfig {
                what: format!(
                    "training data mismatch: {} feature rows vs {} labels",
                    features.rows(),
                    labels.len()
                ),
            });
        }
        let mut optimizer = Sgd::new(self.config.sgd)?;
        let mut order: Vec<usize> = (0..features.rows()).collect();
        let mut last_epoch_loss = 0.0;
        for epoch in 0..self.config.epochs {
            let mut shuffle_rng =
                rng::rng_for_indexed(self.config.seed, "trainer-shuffle", epoch as u64);
            order.shuffle(&mut shuffle_rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(self.config.batch_size) {
                let batch_x = features.select_rows(chunk);
                let batch_y: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                epoch_loss +=
                    model.train_batch(&batch_x, &batch_y, &mut optimizer, self.config.freeze)?;
                batches += 1;
            }
            last_epoch_loss = epoch_loss / batches.max(1) as f32;
        }
        Ok(last_epoch_loss)
    }

    /// Evaluates `model` on `(features, labels)`.
    ///
    /// # Errors
    ///
    /// Returns an error when the data is empty or inconsistent with the
    /// model.
    pub fn evaluate(
        &self,
        model: &mut BlockNet,
        features: &Matrix,
        labels: &[usize],
    ) -> Result<EvalReport> {
        if features.rows() == 0 || features.rows() != labels.len() {
            return Err(NnError::InvalidConfig {
                what: format!(
                    "evaluation data mismatch: {} feature rows vs {} labels",
                    features.rows(),
                    labels.len()
                ),
            });
        }
        Ok(EvalReport {
            accuracy: model.evaluate_accuracy(features, labels)?,
            loss: model.evaluate_loss(features, labels)?,
            samples: labels.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockNetConfig;
    use fedft_tensor::init;

    /// Builds a linearly separable two-class toy problem.
    fn toy_problem(n_per_class: usize, dim: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut r = rng::rng_for(seed, "toy");
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..2usize {
            let offset = if class == 0 { -1.0 } else { 1.0 };
            let noise = init::normal(&mut r, n_per_class, dim, offset, 0.3);
            for i in 0..n_per_class {
                rows.push(noise.row(i).to_vec());
                labels.push(class);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn config_validation() {
        assert!(TrainerConfig::default().validate().is_ok());
        assert!(TrainerConfig {
            epochs: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TrainerConfig {
            batch_size: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(Trainer::new(TrainerConfig {
            epochs: 0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn fit_learns_separable_problem() {
        let (x, y) = toy_problem(40, 6, 3);
        let mut net = BlockNet::new(&BlockNetConfig::new(6, 2).with_hidden(16, 16, 16), 7);
        let trainer = Trainer::new(TrainerConfig {
            epochs: 10,
            batch_size: 16,
            ..Default::default()
        })
        .unwrap();
        trainer.fit(&mut net, &x, &y).unwrap();
        let report = trainer.evaluate(&mut net, &x, &y).unwrap();
        assert!(report.accuracy > 0.9, "accuracy={}", report.accuracy);
        assert_eq!(report.samples, 80);
    }

    #[test]
    fn fit_is_deterministic_for_same_seed() {
        let (x, y) = toy_problem(20, 4, 5);
        let run = |seed: u64| {
            let mut net = BlockNet::new(&BlockNetConfig::new(4, 2).with_hidden(8, 8, 8), 1);
            let trainer = Trainer::new(TrainerConfig {
                epochs: 3,
                batch_size: 8,
                seed,
                ..Default::default()
            })
            .unwrap();
            trainer.fit(&mut net, &x, &y).unwrap();
            net.full_vector()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn fit_rejects_mismatched_data() {
        let (x, _) = toy_problem(5, 4, 1);
        let mut net = BlockNet::new(&BlockNetConfig::new(4, 2).with_hidden(8, 8, 8), 1);
        let trainer = Trainer::new(TrainerConfig::default()).unwrap();
        assert!(trainer.fit(&mut net, &x, &[0, 1]).is_err());
        assert!(trainer.evaluate(&mut net, &x, &[0]).is_err());
        assert!(trainer.fit(&mut net, &Matrix::zeros(0, 4), &[]).is_err());
    }

    #[test]
    fn classifier_only_training_still_learns_something() {
        let (x, y) = toy_problem(40, 6, 13);
        let mut net = BlockNet::new(&BlockNetConfig::new(6, 2).with_hidden(16, 16, 16), 7);
        let trainer = Trainer::new(TrainerConfig {
            epochs: 15,
            batch_size: 16,
            freeze: FreezeLevel::Classifier,
            ..Default::default()
        })
        .unwrap();
        trainer.fit(&mut net, &x, &y).unwrap();
        let report = trainer.evaluate(&mut net, &x, &y).unwrap();
        assert!(report.accuracy > 0.7, "accuracy={}", report.accuracy);
    }
}
