//! Fully-connected, activation, dropout and normalisation layers.

use crate::layer::Layer;
use crate::{NnError, Result};
use fedft_tensor::{init, rng, Matrix};
use rand::Rng;

/// Fully-connected (affine) layer: `Y = X·W + b`.
///
/// Weights use He-normal initialisation, biases start at zero.
///
/// # Example
///
/// ```
/// use fedft_nn::{Dense, Layer};
/// use fedft_tensor::Matrix;
///
/// # fn main() -> Result<(), fedft_nn::NnError> {
/// let mut layer = Dense::new(4, 3, 0);
/// let x = Matrix::zeros(5, 4);
/// let y = layer.forward(&x, true)?;
/// assert_eq!(y.shape(), (5, 3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Matrix,
    bias: Matrix,
    grad_weight: Matrix,
    grad_bias: Matrix,
    cached_input: Option<Matrix>,
    in_features: usize,
    out_features: usize,
}

impl Dense {
    /// Creates a new dense layer with `in_features` inputs and `out_features`
    /// outputs, initialised deterministically from `seed`.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        let mut r = rng::rng_for(seed, "dense-init");
        Dense {
            weight: init::he_normal(&mut r, in_features, out_features),
            bias: Matrix::zeros(1, out_features),
            grad_weight: Matrix::zeros(in_features, out_features),
            grad_bias: Matrix::zeros(1, out_features),
            cached_input: None,
            in_features,
            out_features,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable view of the weight matrix (shape `in_features × out_features`).
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Immutable view of the bias row vector.
    pub fn bias(&self) -> &Matrix {
        &self.bias
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Matrix, _training: bool) -> Result<Matrix> {
        let out = self.forward_frozen(input)?;
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn forward_frozen(&self, input: &Matrix) -> Result<Matrix> {
        Ok(input.matmul(&self.weight)?.add_row_broadcast(&self.bias)?)
    }

    fn forward_frozen_batch(&self, inputs: &[&Matrix]) -> Result<Vec<Matrix>> {
        // The weight matrix is shared across the whole batch, so it is packed
        // once and swept by every input (`Matrix::matmul_batch`) instead of
        // being re-read column-strided per call. Each product is
        // byte-identical to the per-input `matmul`.
        let products = self.weight.matmul_batch(inputs)?;
        products
            .into_iter()
            .map(|p| Ok(p.add_row_broadcast(&self.bias)?))
            .collect()
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "dense" })?;
        // dW = X^T · dY, accumulated.
        let dw = input.matmul_tn(grad_output)?;
        self.grad_weight.add_assign(&dw)?;
        self.grad_bias.add_assign(&grad_output.sum_rows())?;
        // dX = dY · W^T
        Ok(grad_output.matmul_nt(&self.weight)?)
    }

    fn params(&self) -> Vec<&Matrix> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Matrix> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn zero_grads(&mut self) {
        self.grad_weight.scale_assign(0.0);
        self.grad_bias.scale_assign(0.0);
    }

    fn forward_flops_per_sample(&self) -> u64 {
        // One multiply-add per weight plus the bias add.
        (2 * self.in_features * self.out_features + self.out_features) as u64
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Rectified linear unit activation.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cached_input: Option<Matrix>,
    features_hint: usize,
}

impl Relu {
    /// Creates a ReLU layer. `features_hint` is only used for FLOP accounting.
    pub fn new(features_hint: usize) -> Self {
        Relu {
            cached_input: None,
            features_hint,
        }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Matrix, _training: bool) -> Result<Matrix> {
        self.cached_input = Some(input.clone());
        self.forward_frozen(input)
    }

    fn forward_frozen(&self, input: &Matrix) -> Result<Matrix> {
        Ok(input.map(|v| v.max(0.0)))
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "relu" })?;
        if input.shape() != grad_output.shape() {
            return Err(NnError::Tensor(fedft_tensor::TensorError::ShapeMismatch {
                op: "relu_backward",
                lhs: input.shape(),
                rhs: grad_output.shape(),
            }));
        }
        let mask = input.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        Ok(grad_output.hadamard(&mask)?)
    }

    fn params(&self) -> Vec<&Matrix> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Matrix> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}

    fn forward_flops_per_sample(&self) -> u64 {
        self.features_hint as u64
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Inverted dropout: active only during training, identity at inference.
#[derive(Debug, Clone)]
pub struct Dropout {
    rate: f32,
    seed: u64,
    calls: u64,
    mask: Option<Matrix>,
    features_hint: usize,
}

impl Dropout {
    /// Creates a dropout layer that zeroes each activation with probability
    /// `rate` during training.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1)`.
    pub fn new(rate: f32, seed: u64, features_hint: usize) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        Dropout {
            rate,
            seed,
            calls: 0,
            mask: None,
            features_hint,
        }
    }

    /// The configured dropout probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, input: &Matrix, training: bool) -> Result<Matrix> {
        if !training || self.rate == 0.0 {
            self.mask = None;
            return Ok(input.clone());
        }
        self.calls += 1;
        let mut r = rng::rng_for_indexed(self.seed, "dropout", self.calls);
        let keep = 1.0 - self.rate;
        let mask = Matrix::from_vec(
            input.rows(),
            input.cols(),
            (0..input.len())
                .map(|_| {
                    if r.gen::<f32>() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                })
                .collect(),
        )?;
        let out = input.hadamard(&mask)?;
        self.mask = Some(mask);
        Ok(out)
    }

    fn forward_frozen(&self, input: &Matrix) -> Result<Matrix> {
        // Frozen blocks always run in inference mode, where dropout is the
        // identity.
        Ok(input.clone())
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix> {
        match &self.mask {
            Some(mask) => Ok(grad_output.hadamard(mask)?),
            None => Ok(grad_output.clone()),
        }
    }

    fn params(&self) -> Vec<&Matrix> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Matrix> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}

    fn forward_flops_per_sample(&self) -> u64 {
        self.features_hint as u64
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Batch normalisation over features for 2-D activations, with running
/// statistics for inference.
#[derive(Debug, Clone)]
pub struct BatchNorm1d {
    gamma: Matrix,
    beta: Matrix,
    grad_gamma: Matrix,
    grad_beta: Matrix,
    running_mean: Matrix,
    running_var: Matrix,
    momentum: f32,
    eps: f32,
    features: usize,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    normalised: Matrix,
    std_inv: Vec<f32>,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer over `features` columns.
    pub fn new(features: usize) -> Self {
        BatchNorm1d {
            gamma: Matrix::full(1, features, 1.0),
            beta: Matrix::zeros(1, features),
            grad_gamma: Matrix::zeros(1, features),
            grad_beta: Matrix::zeros(1, features),
            running_mean: Matrix::zeros(1, features),
            running_var: Matrix::full(1, features, 1.0),
            momentum: 0.1,
            eps: 1e-5,
            features,
            cache: None,
        }
    }

    /// Number of normalised features.
    pub fn features(&self) -> usize {
        self.features
    }

    /// The normalisation arithmetic shared by every forward path:
    /// `out = γ · (x − mean) / √(var + ε) + β`, also returning the
    /// normalised activations and inverse standard deviations the backward
    /// pass caches. One implementation keeps the training, inference and
    /// frozen paths bit-identical by construction.
    fn normalise(&self, input: &Matrix, mean: &Matrix, var: &Matrix) -> (Matrix, Matrix, Vec<f32>) {
        let std_inv: Vec<f32> = (0..self.features)
            .map(|c| 1.0 / (var.get(0, c) + self.eps).sqrt())
            .collect();
        let mut normalised = Matrix::zeros(input.rows(), self.features);
        let mut out = Matrix::zeros(input.rows(), self.features);
        for r in 0..input.rows() {
            for (c, &si) in std_inv.iter().enumerate() {
                let x_hat = (input.get(r, c) - mean.get(0, c)) * si;
                normalised.set(r, c, x_hat);
                out.set(r, c, self.gamma.get(0, c) * x_hat + self.beta.get(0, c));
            }
        }
        (out, normalised, std_inv)
    }

    fn check_width(&self, input: &Matrix) -> Result<()> {
        if input.cols() != self.features {
            return Err(NnError::Tensor(fedft_tensor::TensorError::ShapeMismatch {
                op: "batchnorm_forward",
                lhs: input.shape(),
                rhs: (1, self.features),
            }));
        }
        Ok(())
    }
}

impl Layer for BatchNorm1d {
    fn name(&self) -> &'static str {
        "batchnorm1d"
    }

    fn forward(&mut self, input: &Matrix, training: bool) -> Result<Matrix> {
        self.check_width(input)?;
        let n = input.rows().max(1) as f32;
        let (mean, var) = if training && input.rows() > 1 {
            let mean = input.mean_rows()?;
            let mut var = Matrix::zeros(1, self.features);
            for r in 0..input.rows() {
                for c in 0..self.features {
                    let d = input.get(r, c) - mean.get(0, c);
                    var.set(0, c, var.get(0, c) + d * d);
                }
            }
            var.scale_assign(1.0 / n);
            // Update running statistics.
            for c in 0..self.features {
                let rm = self.running_mean.get(0, c);
                let rv = self.running_var.get(0, c);
                self.running_mean.set(
                    0,
                    c,
                    (1.0 - self.momentum) * rm + self.momentum * mean.get(0, c),
                );
                self.running_var.set(
                    0,
                    c,
                    (1.0 - self.momentum) * rv + self.momentum * var.get(0, c),
                );
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let (out, normalised, std_inv) = self.normalise(input, &mean, &var);
        if training {
            self.cache = Some(BnCache {
                normalised,
                std_inv,
            });
        } else {
            self.cache = None;
        }
        Ok(out)
    }

    fn forward_frozen(&self, input: &Matrix) -> Result<Matrix> {
        self.check_width(input)?;
        // The inference path of `forward`: running statistics, no cache.
        let (out, _, _) = self.normalise(input, &self.running_mean, &self.running_var);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix> {
        let cache = self.cache.as_ref().ok_or(NnError::BackwardBeforeForward {
            layer: "batchnorm1d",
        })?;
        let n = grad_output.rows() as f32;
        let mut grad_input = Matrix::zeros(grad_output.rows(), self.features);

        for c in 0..self.features {
            let mut sum_dy = 0.0_f32;
            let mut sum_dy_xhat = 0.0_f32;
            for r in 0..grad_output.rows() {
                let dy = grad_output.get(r, c);
                sum_dy += dy;
                sum_dy_xhat += dy * cache.normalised.get(r, c);
            }
            self.grad_beta.set(0, c, self.grad_beta.get(0, c) + sum_dy);
            self.grad_gamma
                .set(0, c, self.grad_gamma.get(0, c) + sum_dy_xhat);
            let gamma = self.gamma.get(0, c);
            for r in 0..grad_output.rows() {
                let dy = grad_output.get(r, c);
                let x_hat = cache.normalised.get(r, c);
                let dx = gamma * cache.std_inv[c] / n * (n * dy - sum_dy - x_hat * sum_dy_xhat);
                grad_input.set(r, c, dx);
            }
        }
        Ok(grad_input)
    }

    fn params(&self) -> Vec<&Matrix> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn grads(&self) -> Vec<&Matrix> {
        vec![&self.grad_gamma, &self.grad_beta]
    }

    fn zero_grads(&mut self) {
        self.grad_gamma.scale_assign(0.0);
        self.grad_beta.scale_assign(0.0);
    }

    fn forward_flops_per_sample(&self) -> u64 {
        (self.features * 4) as u64
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedft_tensor::stats;

    fn finite_difference_check(
        mut forward: impl FnMut(&Matrix) -> f32,
        input: &Matrix,
        analytic: &Matrix,
        eps: f32,
        tol: f32,
    ) {
        for r in 0..input.rows() {
            for c in 0..input.cols() {
                let mut plus = input.clone();
                plus.set(r, c, input.get(r, c) + eps);
                let mut minus = input.clone();
                minus.set(r, c, input.get(r, c) - eps);
                let numeric = (forward(&plus) - forward(&minus)) / (2.0 * eps);
                let diff = (numeric - analytic.get(r, c)).abs();
                assert!(
                    diff < tol,
                    "finite-difference mismatch at ({r},{c}): numeric={numeric}, analytic={}",
                    analytic.get(r, c)
                );
            }
        }
    }

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut layer = Dense::new(3, 2, 1);
        let x = Matrix::zeros(4, 3);
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.shape(), (4, 2));
        // Zero input -> output equals bias (zero).
        assert_eq!(y.sum(), 0.0);
    }

    #[test]
    fn dense_backward_before_forward_errors() {
        let mut layer = Dense::new(3, 2, 1);
        let err = layer.backward(&Matrix::zeros(1, 2)).unwrap_err();
        assert!(matches!(err, NnError::BackwardBeforeForward { .. }));
    }

    #[test]
    fn dense_input_gradient_matches_finite_difference() {
        let mut layer = Dense::new(3, 2, 3);
        let x = Matrix::from_rows(&[vec![0.5, -1.0, 2.0], vec![1.5, 0.3, -0.7]]).unwrap();
        // Scalar objective: sum of outputs.
        let y = layer.forward(&x, true).unwrap();
        let grad_out = Matrix::full(y.rows(), y.cols(), 1.0);
        let grad_in = layer.backward(&grad_out).unwrap();

        let mut probe = layer.clone();
        finite_difference_check(
            |input| probe.forward(input, true).unwrap().sum(),
            &x,
            &grad_in,
            1e-2,
            1e-2,
        );
    }

    #[test]
    fn dense_weight_gradient_matches_finite_difference() {
        let mut layer = Dense::new(2, 2, 5);
        let x = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 0.25]]).unwrap();
        let y = layer.forward(&x, true).unwrap();
        layer
            .backward(&Matrix::full(y.rows(), y.cols(), 1.0))
            .unwrap();
        let analytic = layer.grads()[0].clone();

        let eps = 1e-2;
        for r in 0..2 {
            for c in 0..2 {
                let mut plus = layer.clone();
                plus.params_mut()[0].set(r, c, layer.params()[0].get(r, c) + eps);
                let mut minus = layer.clone();
                minus.params_mut()[0].set(r, c, layer.params()[0].get(r, c) - eps);
                let f_plus = plus.forward(&x, true).unwrap().sum();
                let f_minus = minus.forward(&x, true).unwrap().sum();
                let numeric = (f_plus - f_minus) / (2.0 * eps);
                assert!((numeric - analytic.get(r, c)).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn dense_gradients_accumulate_until_zeroed() {
        let mut layer = Dense::new(2, 2, 5);
        let x = Matrix::full(1, 2, 1.0);
        let g = Matrix::full(1, 2, 1.0);
        layer.forward(&x, true).unwrap();
        layer.backward(&g).unwrap();
        let first = layer.grads()[0].clone();
        layer.forward(&x, true).unwrap();
        layer.backward(&g).unwrap();
        assert!(layer.grads()[0].approx_eq(&first.scale(2.0), 1e-6));
        layer.zero_grads();
        assert_eq!(layer.grads()[0].sum(), 0.0);
    }

    #[test]
    fn relu_clamps_and_masks_gradient() {
        let mut relu = Relu::new(3);
        let x = Matrix::from_rows(&[vec![-1.0, 0.0, 2.0]]).unwrap();
        let y = relu.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
        let g = relu.backward(&Matrix::full(1, 3, 1.0)).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn relu_backward_shape_mismatch_errors() {
        let mut relu = Relu::new(3);
        relu.forward(&Matrix::zeros(1, 3), true).unwrap();
        assert!(relu.backward(&Matrix::zeros(1, 4)).is_err());
    }

    #[test]
    fn dropout_is_identity_at_inference() {
        let mut d = Dropout::new(0.5, 7, 4);
        let x = Matrix::full(2, 4, 3.0);
        let y = d.forward(&x, false).unwrap();
        assert!(y.approx_eq(&x, 0.0));
    }

    #[test]
    fn dropout_preserves_expected_scale_in_training() {
        let mut d = Dropout::new(0.5, 7, 512);
        let x = Matrix::full(8, 512, 1.0);
        let y = d.forward(&x, true).unwrap();
        // Inverted dropout: mean stays near 1.
        assert!((y.mean() - 1.0).abs() < 0.1, "mean={}", y.mean());
    }

    #[test]
    fn dropout_backward_applies_same_mask() {
        let mut d = Dropout::new(0.5, 9, 16);
        let x = Matrix::full(4, 16, 1.0);
        let y = d.forward(&x, true).unwrap();
        let g = d.backward(&Matrix::full(4, 16, 1.0)).unwrap();
        assert!(g.approx_eq(&y, 1e-6));
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn dropout_rejects_invalid_rate() {
        let _ = Dropout::new(1.0, 0, 4);
    }

    #[test]
    fn batchnorm_normalises_training_batch() {
        let mut bn = BatchNorm1d::new(2);
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]]).unwrap();
        let y = bn.forward(&x, true).unwrap();
        for c in 0..2 {
            let col = y.column(c);
            assert!(stats::mean(&col).abs() < 1e-4);
            assert!((stats::variance(&col) - 1.0).abs() < 0.1);
        }
    }

    #[test]
    fn batchnorm_rejects_wrong_width() {
        let mut bn = BatchNorm1d::new(2);
        assert!(bn.forward(&Matrix::zeros(3, 5), true).is_err());
    }

    #[test]
    fn batchnorm_backward_requires_forward() {
        let mut bn = BatchNorm1d::new(2);
        assert!(bn.backward(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn batchnorm_inference_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1);
        let x = Matrix::from_rows(&[vec![2.0], vec![4.0], vec![6.0]]).unwrap();
        for _ in 0..50 {
            bn.forward(&x, true).unwrap();
        }
        let y = bn
            .forward(&Matrix::from_rows(&[vec![4.0]]).unwrap(), false)
            .unwrap();
        // 4.0 is the running mean, so the normalised output is near zero.
        assert!(y.get(0, 0).abs() < 0.2, "got {}", y.get(0, 0));
    }

    #[test]
    fn batchnorm_input_gradient_matches_finite_difference() {
        let mut bn = BatchNorm1d::new(2);
        let x = Matrix::from_rows(&[vec![0.3, -1.2], vec![1.1, 0.4], vec![-0.5, 2.0]]).unwrap();
        let y = bn.forward(&x, true).unwrap();
        // Objective: weighted sum so gradients differ per element.
        let weights =
            Matrix::from_rows(&[vec![1.0, 2.0], vec![-1.0, 0.5], vec![0.25, -2.0]]).unwrap();
        let analytic = bn.backward(&weights).unwrap();
        let _ = y;

        let mut probe = BatchNorm1d::new(2);
        finite_difference_check(
            |input| {
                probe
                    .forward(input, true)
                    .unwrap()
                    .hadamard(&weights)
                    .unwrap()
                    .sum()
            },
            &x,
            &analytic,
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn forward_frozen_matches_inference_forward_bit_for_bit() {
        let x = Matrix::from_rows(&[vec![0.5, -1.0, 2.0], vec![1.5, 0.3, -0.7]]).unwrap();
        let mut dense = Dense::new(3, 4, 1);
        assert_eq!(
            dense.forward_frozen(&x).unwrap(),
            dense.forward(&x, false).unwrap()
        );
        let mut relu = Relu::new(3);
        assert_eq!(
            relu.forward_frozen(&x).unwrap(),
            relu.forward(&x, false).unwrap()
        );
        let mut dropout = Dropout::new(0.5, 7, 3);
        assert_eq!(
            dropout.forward_frozen(&x).unwrap(),
            dropout.forward(&x, false).unwrap()
        );
        let mut bn = BatchNorm1d::new(3);
        // Accumulate some running statistics first so the inference path is
        // non-trivial.
        for _ in 0..3 {
            bn.forward(&x, true).unwrap();
        }
        assert_eq!(
            bn.forward_frozen(&x).unwrap(),
            bn.forward(&x, false).unwrap()
        );
        assert!(bn.forward_frozen(&Matrix::zeros(1, 5)).is_err());
    }

    #[test]
    fn parameter_counts() {
        let d = Dense::new(10, 5, 0);
        assert_eq!(d.parameter_count(), 55);
        let bn = BatchNorm1d::new(8);
        assert_eq!(bn.parameter_count(), 16);
        let r = Relu::new(4);
        assert_eq!(r.parameter_count(), 0);
    }

    #[test]
    fn flops_are_nonzero_for_parameterised_layers() {
        assert!(Dense::new(4, 4, 0).forward_flops_per_sample() > 0);
        assert!(BatchNorm1d::new(4).forward_flops_per_sample() > 0);
    }
}
