//! FLOP accounting used by the training-time cost model.
//!
//! The paper's learning-efficiency metric (Figures 6 and 7) divides the best
//! global accuracy by the *total client training time*. In this reproduction
//! wall-clock time on the authors' testbed is replaced by a deterministic
//! FLOP-based cost model; this module provides the building blocks, and
//! `fedft-core::cost` converts FLOPs to simulated seconds.

use serde::{Deserialize, Serialize};

/// FLOP counts for one sample processed by a model under a given freeze
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlopsBreakdown {
    /// Forward FLOPs through the frozen blocks (always paid, even when only
    /// fine-tuning the upper part, because activations must flow through).
    pub forward_frozen: u64,
    /// Forward FLOPs through the trainable blocks.
    pub forward_trainable: u64,
    /// Backward FLOPs through the trainable blocks (the frozen part is never
    /// back-propagated through, which is where FedFT saves compute).
    pub backward_trainable: u64,
}

impl FlopsBreakdown {
    /// Total FLOPs for one training step on one sample
    /// (forward everywhere + backward through the trainable part).
    pub fn training_flops(&self) -> u64 {
        self.forward_frozen + self.forward_trainable + self.backward_trainable
    }

    /// Total FLOPs for one inference pass on one sample, e.g. the selection
    /// forward pass used by entropy-based data selection.
    pub fn inference_flops(&self) -> u64 {
        self.forward_frozen + self.forward_trainable
    }

    /// Total FLOPs for one training step on one sample when the boundary
    /// activations of the frozen prefix are served from a feature cache:
    /// only the trainable suffix runs, forward and backward.
    ///
    /// This is the **cached** workload accounting; [`FlopsBreakdown::
    /// training_flops`] is the paper-faithful one that re-runs the frozen
    /// prefix every step. The one-time cost of building the cache is
    /// [`FlopsBreakdown::cache_build_flops`] per sample.
    pub fn cached_training_flops(&self) -> u64 {
        self.forward_trainable + self.backward_trainable
    }

    /// Total FLOPs for one inference pass on one sample from cached boundary
    /// activations (e.g. the entropy-selection pass through the suffix).
    pub fn cached_inference_flops(&self) -> u64 {
        self.forward_trainable
    }

    /// One-time per-sample FLOPs to build the feature cache: a single
    /// forward pass through the frozen prefix. Paid once per client dataset
    /// per backbone, then amortised across every batch, epoch, round and
    /// selection pass.
    pub fn cache_build_flops(&self) -> u64 {
        self.forward_frozen
    }

    /// Sums two breakdowns component-wise.
    pub fn combine(&self, other: &FlopsBreakdown) -> FlopsBreakdown {
        FlopsBreakdown {
            forward_frozen: self.forward_frozen + other.forward_frozen,
            forward_trainable: self.forward_trainable + other.forward_trainable,
            backward_trainable: self.backward_trainable + other.backward_trainable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let b = FlopsBreakdown {
            forward_frozen: 100,
            forward_trainable: 50,
            backward_trainable: 120,
        };
        assert_eq!(b.training_flops(), 270);
        assert_eq!(b.inference_flops(), 150);
        assert_eq!(b.cached_training_flops(), 170);
        assert_eq!(b.cached_inference_flops(), 50);
        assert_eq!(b.cache_build_flops(), 100);
    }

    #[test]
    fn cached_accounting_never_exceeds_the_paper_faithful_one() {
        let b = FlopsBreakdown {
            forward_frozen: 100,
            forward_trainable: 50,
            backward_trainable: 120,
        };
        assert!(b.cached_training_flops() <= b.training_flops());
        assert!(b.cached_inference_flops() <= b.inference_flops());
        // Without a frozen prefix the two accountings coincide.
        let full = FlopsBreakdown {
            forward_frozen: 0,
            forward_trainable: 150,
            backward_trainable: 120,
        };
        assert_eq!(full.cached_training_flops(), full.training_flops());
        assert_eq!(full.cached_inference_flops(), full.inference_flops());
        assert_eq!(full.cache_build_flops(), 0);
    }

    #[test]
    fn combine_is_componentwise() {
        let a = FlopsBreakdown {
            forward_frozen: 1,
            forward_trainable: 2,
            backward_trainable: 3,
        };
        let b = a.combine(&a);
        assert_eq!(b.forward_frozen, 2);
        assert_eq!(b.forward_trainable, 4);
        assert_eq!(b.backward_trainable, 6);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(FlopsBreakdown::default().training_flops(), 0);
    }
}
