//! Block-structured network mirroring the paper's WRN layer groups.

use crate::flops::FlopsBreakdown;
use crate::freeze::FreezeLevel;
use crate::layers::{Dense, Relu};
use crate::loss::SoftmaxCrossEntropy;
use crate::optimizer::Sgd;
use crate::params::ParamVector;
use crate::sequential::Sequential;
use crate::suffix::{self, SuffixNet};
use crate::{NnError, Result};
use fedft_tensor::{stats, Matrix};
use serde::{Deserialize, Serialize};

/// Identifier of a layer group inside a [`BlockNet`].
///
/// These correspond to the paper's *low*, *mid* and *up* layer groups of the
/// WRN (used for the CKA analysis of Figures 2–4) plus the classifier head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockId {
    /// Lowest layer group (first part of the feature extractor).
    Low,
    /// Middle layer group.
    Mid,
    /// Upper layer group.
    Up,
    /// Classifier head producing logits.
    Classifier,
}

impl BlockId {
    /// All block identifiers in forward order.
    pub fn all() -> [BlockId; 4] {
        [BlockId::Low, BlockId::Mid, BlockId::Up, BlockId::Classifier]
    }

    /// Position of the block in forward order.
    pub fn index(self) -> usize {
        match self {
            BlockId::Low => 0,
            BlockId::Mid => 1,
            BlockId::Up => 2,
            BlockId::Classifier => 3,
        }
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            BlockId::Low => "low",
            BlockId::Mid => "mid",
            BlockId::Up => "up",
            BlockId::Classifier => "classifier",
        };
        f.write_str(name)
    }
}

/// Configuration of a [`BlockNet`].
///
/// The defaults give a small model suitable for fast simulation; the
/// experiment harness widens it for paper-scale runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockNetConfig {
    /// Number of input features.
    pub input_dim: usize,
    /// Number of output classes.
    pub num_classes: usize,
    /// Width of the low block.
    pub hidden_low: usize,
    /// Width of the mid block.
    pub hidden_mid: usize,
    /// Width of the up block.
    pub hidden_up: usize,
}

impl BlockNetConfig {
    /// Creates a configuration with default hidden widths (64/64/64).
    pub fn new(input_dim: usize, num_classes: usize) -> Self {
        BlockNetConfig {
            input_dim,
            num_classes,
            hidden_low: 64,
            hidden_mid: 64,
            hidden_up: 64,
        }
    }

    /// Overrides the three hidden widths.
    pub fn with_hidden(mut self, low: usize, mid: usize, up: usize) -> Self {
        self.hidden_low = low;
        self.hidden_mid = mid;
        self.hidden_up = up;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if any dimension is zero.
    pub fn validate(&self) -> Result<()> {
        for (name, value) in [
            ("input_dim", self.input_dim),
            ("num_classes", self.num_classes),
            ("hidden_low", self.hidden_low),
            ("hidden_mid", self.hidden_mid),
            ("hidden_up", self.hidden_up),
        ] {
            if value == 0 {
                return Err(NnError::InvalidConfig {
                    what: format!("{name} must be non-zero"),
                });
            }
        }
        Ok(())
    }
}

/// A four-block feed-forward network: low → mid → up → classifier.
///
/// The lower blocks play the role of the paper's pretrained feature extractor
/// `ϕ`; the upper blocks are the trainable part `θ`. Which blocks belong to
/// `θ` is decided per call through a [`FreezeLevel`], so the same model
/// supports FedAvg (train everything), FedFT (train the upper part only) and
/// the Figure 10a ablation.
#[derive(Debug, Clone)]
pub struct BlockNet {
    config: BlockNetConfig,
    blocks: Vec<Sequential>,
    loss: SoftmaxCrossEntropy,
}

impl BlockNet {
    /// Builds a network from a configuration and a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`BlockNetConfig::validate`] to check it beforehand when the values
    /// come from user input.
    pub fn new(config: &BlockNetConfig, seed: u64) -> Self {
        config.validate().expect("invalid BlockNetConfig");
        let low = Sequential::new()
            .push(Box::new(Dense::new(
                config.input_dim,
                config.hidden_low,
                seed,
            )))
            .push(Box::new(Relu::new(config.hidden_low)));
        let mid = Sequential::new()
            .push(Box::new(Dense::new(
                config.hidden_low,
                config.hidden_mid,
                seed.wrapping_add(1),
            )))
            .push(Box::new(Relu::new(config.hidden_mid)));
        let up = Sequential::new()
            .push(Box::new(Dense::new(
                config.hidden_mid,
                config.hidden_up,
                seed.wrapping_add(2),
            )))
            .push(Box::new(Relu::new(config.hidden_up)));
        let classifier = Sequential::new().push(Box::new(Dense::new(
            config.hidden_up,
            config.num_classes,
            seed.wrapping_add(3),
        )));
        BlockNet {
            config: *config,
            blocks: vec![low, mid, up, classifier],
            loss: SoftmaxCrossEntropy::new(),
        }
    }

    /// The configuration used to build the network.
    pub fn config(&self) -> &BlockNetConfig {
        &self.config
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    /// Number of input features.
    pub fn input_dim(&self) -> usize {
        self.config.input_dim
    }

    /// Inference forward pass producing logits.
    ///
    /// # Errors
    ///
    /// Returns an error if the input width differs from
    /// [`BlockNet::input_dim`].
    pub fn forward(&mut self, input: &Matrix) -> Result<Matrix> {
        self.forward_internal(input, false)
    }

    /// Training-mode forward pass producing logits.
    ///
    /// # Errors
    ///
    /// Returns an error if the input width differs from
    /// [`BlockNet::input_dim`].
    pub fn forward_training(&mut self, input: &Matrix) -> Result<Matrix> {
        self.forward_internal(input, true)
    }

    fn forward_internal(&mut self, input: &Matrix, training: bool) -> Result<Matrix> {
        let mut current = input.clone();
        for block in &mut self.blocks {
            current = block.forward(&current, training)?;
        }
        Ok(current)
    }

    /// Forward pass that also returns the activation at the output of every
    /// block, used by the CKA analysis.
    ///
    /// # Errors
    ///
    /// Returns an error if the input width differs from
    /// [`BlockNet::input_dim`].
    pub fn forward_collect(&mut self, input: &Matrix) -> Result<Vec<(BlockId, Matrix)>> {
        let mut current = input.clone();
        let mut collected = Vec::with_capacity(self.blocks.len());
        for (id, block) in BlockId::all().iter().zip(self.blocks.iter_mut()) {
            current = block.forward(&current, false)?;
            collected.push((*id, current.clone()));
        }
        Ok(collected)
    }

    /// Class-probability output using a softmax with the given temperature.
    ///
    /// A temperature below `1.0` is the paper's hardened softmax used for
    /// entropy-based data selection.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn predict_proba(&mut self, input: &Matrix, temperature: f32) -> Result<Matrix> {
        let logits = self.forward(input)?;
        Ok(stats::softmax_with_temperature(&logits, temperature)?)
    }

    /// Top-1 accuracy on `(input, labels)`.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn evaluate_accuracy(&mut self, input: &Matrix, labels: &[usize]) -> Result<f32> {
        let logits = self.forward(input)?;
        Ok(stats::accuracy(&logits, labels)?)
    }

    /// Mean cross-entropy loss on `(input, labels)`.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or invalid labels.
    pub fn evaluate_loss(&mut self, input: &Matrix, labels: &[usize]) -> Result<f32> {
        let logits = self.forward(input)?;
        self.loss.loss(&logits, labels)
    }

    /// Inference forward pass through the **frozen prefix** only, producing
    /// the boundary activations the trainable suffix consumes.
    ///
    /// Works through a shared reference (frozen blocks are never
    /// back-propagated through, so no activation caching is needed), which
    /// is what lets one global model serve every client's frozen pass
    /// concurrently. At [`FreezeLevel::Full`] there is no frozen prefix and
    /// the input is returned unchanged.
    ///
    /// # Errors
    ///
    /// Returns an error if the input width differs from
    /// [`BlockNet::input_dim`].
    pub fn forward_frozen(&self, freeze: FreezeLevel, input: &Matrix) -> Result<Matrix> {
        let mut current = input.clone();
        for block in &self.blocks[..freeze.frozen_blocks()] {
            current = block.forward_frozen(&current)?;
        }
        Ok(current)
    }

    /// Runs [`BlockNet::forward_frozen`] over a batch of independent feature
    /// matrices (one per client, typically), producing each one's boundary
    /// activations.
    ///
    /// Layer-major across the batch, so every frozen dense layer packs its
    /// weight matrix once for all clients. Each output is bit-identical to
    /// the per-client [`BlockNet::forward_frozen`] call.
    ///
    /// # Errors
    ///
    /// Returns an error if any input width differs from
    /// [`BlockNet::input_dim`].
    pub fn forward_frozen_batch(
        &self,
        freeze: FreezeLevel,
        inputs: &[&Matrix],
    ) -> Result<Vec<Matrix>> {
        suffix::forward_blocks_inference_batch(&self.blocks[..freeze.frozen_blocks()], inputs)
    }

    /// Forward pass through the **trainable suffix**, starting from boundary
    /// activations produced by [`BlockNet::forward_frozen`] (or a cached
    /// copy of them).
    ///
    /// # Errors
    ///
    /// Returns an error if the boundary width does not match the first
    /// trainable block.
    pub fn forward_trainable(
        &mut self,
        freeze: FreezeLevel,
        boundary: &Matrix,
        training: bool,
    ) -> Result<Matrix> {
        suffix::forward_blocks(
            &mut self.blocks[freeze.frozen_blocks()..],
            boundary,
            training,
        )
    }

    /// Performs one training step on a batch and returns the batch loss.
    ///
    /// The backward pass stops at the freeze boundary: gradients never flow
    /// into frozen blocks, mirroring the compute saving of partial
    /// fine-tuning. Implemented as [`BlockNet::forward_frozen`] followed by
    /// [`BlockNet::train_batch_cached`], so training from raw features and
    /// training from (identically computed) cached boundary activations are
    /// the same code path and bit-identical.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch, invalid labels, or optimiser
    /// misconfiguration.
    pub fn train_batch(
        &mut self,
        input: &Matrix,
        labels: &[usize],
        optimizer: &mut Sgd,
        freeze: FreezeLevel,
    ) -> Result<f32> {
        let boundary = self.forward_frozen(freeze, input)?;
        self.train_batch_cached(&boundary, labels, optimizer, freeze)
    }

    /// One training step starting from precomputed boundary activations:
    /// forward and backward run through the trainable suffix only, skipping
    /// the frozen prefix entirely.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch, invalid labels, or optimiser
    /// misconfiguration.
    pub fn train_batch_cached(
        &mut self,
        boundary: &Matrix,
        labels: &[usize],
        optimizer: &mut Sgd,
        freeze: FreezeLevel,
    ) -> Result<f32> {
        suffix::train_blocks(
            &mut self.blocks[freeze.frozen_blocks()..],
            &self.loss,
            boundary,
            labels,
            optimizer,
        )
    }

    /// Clones the trainable suffix `θ` into a standalone [`SuffixNet`] —
    /// the `O(|θ|)` model snapshot a client needs for local training when
    /// the frozen backbone is shared.
    pub fn trainable_suffix(&self, freeze: FreezeLevel) -> SuffixNet {
        SuffixNet::from_blocks(self.blocks[freeze.frozen_blocks()..].to_vec(), freeze)
    }

    /// A cheap fingerprint of the frozen prefix under a freeze level: a hash
    /// over the frozen blocks' parameter bits and shapes.
    ///
    /// Feature caches key their entries on this value so that cached
    /// boundary activations are never served for a *different* backbone —
    /// if `ϕ` ever changes (a new run, a different pretrained model), the
    /// fingerprint changes and the cache rebuilds. During one federated run
    /// `ϕ` is frozen, so the fingerprint is invariant round to round.
    pub fn frozen_fingerprint(&self, freeze: FreezeLevel) -> u64 {
        // FNV-1a over the structure and parameter bits; not cryptographic,
        // just collision-resistant enough for cache keying.
        let mut hash = 0xcbf2_9ce4_8422_2325_u64;
        let mut mix = |value: u64| {
            hash ^= value;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(freeze.frozen_blocks() as u64);
        for block in &self.blocks[..freeze.frozen_blocks()] {
            for param in block.params() {
                mix(param.rows() as u64);
                mix(param.cols() as u64);
                for &value in param.as_slice() {
                    mix(u64::from(value.to_bits()));
                }
            }
        }
        hash
    }

    /// Number of trainable scalar parameters under a freeze level.
    pub fn trainable_parameter_count(&self, freeze: FreezeLevel) -> usize {
        self.blocks[freeze.frozen_blocks()..]
            .iter()
            .map(|b| b.parameter_count())
            .sum()
    }

    /// Total number of scalar parameters.
    pub fn total_parameter_count(&self) -> usize {
        self.blocks.iter().map(|b| b.parameter_count()).sum()
    }

    /// Flattens the trainable part of the model (`θ`) into a vector.
    pub fn trainable_vector(&self, freeze: FreezeLevel) -> ParamVector {
        let params: Vec<&Matrix> = self.blocks[freeze.frozen_blocks()..]
            .iter()
            .flat_map(|b| b.params())
            .collect();
        ParamVector::from_params(&params)
    }

    /// Writes a flattened trainable vector (`θ`) back into the model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamLengthMismatch`] when the vector length does
    /// not match the trainable parameter count.
    pub fn set_trainable_vector(
        &mut self,
        freeze: FreezeLevel,
        vector: &ParamVector,
    ) -> Result<()> {
        let mut params: Vec<&mut Matrix> = self.blocks[freeze.frozen_blocks()..]
            .iter_mut()
            .flat_map(|b| b.params_mut())
            .collect();
        vector.write_to(&mut params)
    }

    /// Flattens every parameter of the model (`ϕ` and `θ`).
    pub fn full_vector(&self) -> ParamVector {
        self.trainable_vector(FreezeLevel::Full)
    }

    /// Writes a full parameter vector back into the model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamLengthMismatch`] when the vector length does
    /// not match the total parameter count.
    pub fn set_full_vector(&mut self, vector: &ParamVector) -> Result<()> {
        self.set_trainable_vector(FreezeLevel::Full, vector)
    }

    /// FLOP breakdown for one sample under a freeze level.
    pub fn flops_per_sample(&self, freeze: FreezeLevel) -> FlopsBreakdown {
        let boundary = freeze.frozen_blocks();
        let forward_frozen: u64 = self.blocks[..boundary]
            .iter()
            .map(|b| b.forward_flops_per_sample())
            .sum();
        let forward_trainable: u64 = self.blocks[boundary..]
            .iter()
            .map(|b| b.forward_flops_per_sample())
            .sum();
        let backward_trainable: u64 = self.blocks[boundary..]
            .iter()
            .map(|b| b.backward_flops_per_sample())
            .sum();
        FlopsBreakdown {
            forward_frozen,
            forward_trainable,
            backward_trainable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::SgdConfig;

    fn config() -> BlockNetConfig {
        BlockNetConfig::new(6, 3).with_hidden(8, 8, 8)
    }

    #[test]
    fn construction_and_shapes() {
        let mut net = BlockNet::new(&config(), 1);
        let x = Matrix::zeros(4, 6);
        let y = net.forward(&x).unwrap();
        assert_eq!(y.shape(), (4, 3));
        assert_eq!(net.num_classes(), 3);
        assert_eq!(net.input_dim(), 6);
    }

    #[test]
    fn config_validation_rejects_zero_dims() {
        let bad = BlockNetConfig::new(0, 3);
        assert!(bad.validate().is_err());
        let bad = BlockNetConfig::new(4, 3).with_hidden(0, 8, 8);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn trainable_parameter_count_decreases_with_freezing() {
        let net = BlockNet::new(&config(), 1);
        let counts: Vec<usize> = FreezeLevel::all()
            .iter()
            .map(|f| net.trainable_parameter_count(*f))
            .collect();
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
        assert_eq!(counts[0], net.total_parameter_count());
    }

    #[test]
    fn trainable_vector_roundtrip() {
        let net = BlockNet::new(&config(), 2);
        let mut other = BlockNet::new(&config(), 99);
        let theta = net.trainable_vector(FreezeLevel::Moderate);
        other
            .set_trainable_vector(FreezeLevel::Moderate, &theta)
            .unwrap();
        assert_eq!(other.trainable_vector(FreezeLevel::Moderate), theta);
        // The frozen part of `other` remains different from `net`'s.
        assert_ne!(other.full_vector(), net.full_vector());
    }

    #[test]
    fn full_vector_roundtrip_makes_models_identical() {
        let mut net = BlockNet::new(&config(), 2);
        let mut other = BlockNet::new(&config(), 99);
        other.set_full_vector(&net.full_vector()).unwrap();
        let x = Matrix::full(3, 6, 0.5);
        assert!(net
            .forward(&x)
            .unwrap()
            .approx_eq(&other.forward(&x).unwrap(), 1e-6));
    }

    #[test]
    fn set_trainable_vector_rejects_wrong_length() {
        let mut net = BlockNet::new(&config(), 2);
        let bad = ParamVector::from_values(vec![0.0; 3]);
        assert!(net
            .set_trainable_vector(FreezeLevel::Classifier, &bad)
            .is_err());
    }

    #[test]
    fn frozen_blocks_do_not_change_during_training() {
        let mut net = BlockNet::new(&config(), 5);
        let frozen_before = {
            let params: Vec<&Matrix> = net.blocks[..2].iter().flat_map(|b| b.params()).collect();
            ParamVector::from_params(&params)
        };
        let mut sgd = Sgd::new(SgdConfig::default()).unwrap();
        let x = Matrix::from_rows(&[vec![1.0, 0.0, 0.5, -0.5, 0.2, 0.1]]).unwrap();
        for _ in 0..10 {
            net.train_batch(&x, &[1], &mut sgd, FreezeLevel::Moderate)
                .unwrap();
        }
        let frozen_after = {
            let params: Vec<&Matrix> = net.blocks[..2].iter().flat_map(|b| b.params()).collect();
            ParamVector::from_params(&params)
        };
        assert_eq!(frozen_before, frozen_after);
        // The trainable part did change.
        assert_ne!(
            net.trainable_vector(FreezeLevel::Moderate),
            BlockNet::new(&config(), 5).trainable_vector(FreezeLevel::Moderate)
        );
    }

    #[test]
    fn training_reduces_loss() {
        let mut net = BlockNet::new(&config(), 11);
        let mut sgd = Sgd::new(SgdConfig {
            learning_rate: 0.1,
            momentum: 0.5,
            weight_decay: 0.0,
        })
        .unwrap();
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0],
        ])
        .unwrap();
        let labels = [0usize, 1, 2];
        let before = net.evaluate_loss(&x, &labels).unwrap();
        for _ in 0..100 {
            net.train_batch(&x, &labels, &mut sgd, FreezeLevel::Full)
                .unwrap();
        }
        let after = net.evaluate_loss(&x, &labels).unwrap();
        assert!(after < before * 0.5, "loss {before} -> {after}");
        assert!(net.evaluate_accuracy(&x, &labels).unwrap() > 0.9);
    }

    #[test]
    fn forward_collect_returns_all_blocks() {
        let mut net = BlockNet::new(&config(), 3);
        let x = Matrix::zeros(2, 6);
        let acts = net.forward_collect(&x).unwrap();
        assert_eq!(acts.len(), 4);
        assert_eq!(acts[0].0, BlockId::Low);
        assert_eq!(acts[3].0, BlockId::Classifier);
        assert_eq!(acts[0].1.shape(), (2, 8));
        assert_eq!(acts[3].1.shape(), (2, 3));
    }

    #[test]
    fn predict_proba_rows_are_distributions() {
        let mut net = BlockNet::new(&config(), 3);
        let x = Matrix::full(3, 6, 0.2);
        let p = net.predict_proba(&x, 0.1).unwrap();
        for r in 0..p.rows() {
            assert!((p.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn flops_decrease_with_more_freezing() {
        let net = BlockNet::new(&config(), 1);
        let full = net.flops_per_sample(FreezeLevel::Full).training_flops();
        let moderate = net.flops_per_sample(FreezeLevel::Moderate).training_flops();
        let classifier = net
            .flops_per_sample(FreezeLevel::Classifier)
            .training_flops();
        assert!(full > moderate);
        assert!(moderate > classifier);
        // Inference cost is identical regardless of freezing.
        assert_eq!(
            net.flops_per_sample(FreezeLevel::Full).inference_flops(),
            net.flops_per_sample(FreezeLevel::Classifier)
                .inference_flops()
        );
    }

    #[test]
    fn forward_frozen_matches_prefix_of_forward_collect() {
        let mut net = BlockNet::new(&config(), 9);
        let x = Matrix::from_rows(&[
            vec![0.4, -0.2, 1.0, 0.0, -1.0, 0.6],
            vec![-0.4, 0.2, -1.0, 0.5, 1.0, -0.6],
        ])
        .unwrap();
        let collected = net.forward_collect(&x).unwrap();
        for freeze in [
            FreezeLevel::Large,
            FreezeLevel::Moderate,
            FreezeLevel::Classifier,
        ] {
            let boundary = net.forward_frozen(freeze, &x).unwrap();
            assert_eq!(boundary, collected[freeze.frozen_blocks() - 1].1);
        }
        // No frozen prefix: the boundary is the input itself.
        assert_eq!(net.forward_frozen(FreezeLevel::Full, &x).unwrap(), x);
    }

    #[test]
    fn forward_trainable_from_boundary_matches_full_forward() {
        let mut net = BlockNet::new(&config(), 4);
        let x = Matrix::full(3, 6, 0.3);
        let full = net.forward(&x).unwrap();
        for freeze in FreezeLevel::all() {
            let boundary = net.forward_frozen(freeze, &x).unwrap();
            let split = net.forward_trainable(freeze, &boundary, false).unwrap();
            assert_eq!(full, split, "freeze {freeze}");
        }
    }

    #[test]
    fn forward_frozen_batch_is_bit_identical_to_per_item_calls() {
        let net = BlockNet::new(&config(), 9);
        let inputs: Vec<Matrix> = (0..5)
            .map(|i| {
                Matrix::from_rows(&[
                    vec![0.4, -0.2 * i as f32, 1.0, 0.0, -1.0, 0.6],
                    vec![-0.4, 0.2, -1.0, 0.5 + i as f32, 1.0, -0.6],
                ])
                .unwrap()
            })
            .collect();
        let refs: Vec<&Matrix> = inputs.iter().collect();
        for freeze in FreezeLevel::all() {
            let batched = net.forward_frozen_batch(freeze, &refs).unwrap();
            for (i, input) in inputs.iter().enumerate() {
                assert_eq!(
                    batched[i],
                    net.forward_frozen(freeze, input).unwrap(),
                    "freeze {freeze}, item {i}"
                );
            }
        }
        // No frozen prefix: the batch comes back unchanged.
        let identity = net.forward_frozen_batch(FreezeLevel::Full, &refs).unwrap();
        assert_eq!(identity, inputs);
    }

    #[test]
    fn train_batch_cached_is_bit_identical_to_train_batch() {
        let freeze = FreezeLevel::Moderate;
        let mut direct = BlockNet::new(&config(), 7);
        let mut cached = BlockNet::new(&config(), 7);
        let mut sgd_a = Sgd::new(SgdConfig::default()).unwrap();
        let mut sgd_b = Sgd::new(SgdConfig::default()).unwrap();
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.5, -0.5, 0.2, 0.1],
            vec![0.0, 1.0, -0.5, 0.5, -0.2, 0.3],
        ])
        .unwrap();
        let boundary = cached.forward_frozen(freeze, &x).unwrap();
        for _ in 0..5 {
            let a = direct.train_batch(&x, &[1, 2], &mut sgd_a, freeze).unwrap();
            let b = cached
                .train_batch_cached(&boundary, &[1, 2], &mut sgd_b, freeze)
                .unwrap();
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(direct.full_vector(), cached.full_vector());
    }

    #[test]
    fn frozen_fingerprint_tracks_the_frozen_prefix_only() {
        let net = BlockNet::new(&config(), 2);
        let freeze = FreezeLevel::Moderate;
        let fp = net.frozen_fingerprint(freeze);
        assert_eq!(fp, net.frozen_fingerprint(freeze), "deterministic");

        // Updating θ (the trainable part) must not change the fingerprint.
        let mut theta_changed = net.clone();
        let theta = BlockNet::new(&config(), 99).trainable_vector(freeze);
        theta_changed.set_trainable_vector(freeze, &theta).unwrap();
        assert_eq!(theta_changed.frozen_fingerprint(freeze), fp);

        // A different backbone or a different freeze level must change it.
        let other = BlockNet::new(&config(), 3);
        assert_ne!(other.frozen_fingerprint(freeze), fp);
        assert_ne!(net.frozen_fingerprint(FreezeLevel::Classifier), fp);
    }

    #[test]
    fn block_id_ordering() {
        assert_eq!(BlockId::Low.index(), 0);
        assert_eq!(BlockId::Classifier.index(), 3);
        assert_eq!(BlockId::Mid.to_string(), "mid");
    }

    #[test]
    fn wrong_input_width_is_an_error() {
        let mut net = BlockNet::new(&config(), 1);
        assert!(net.forward(&Matrix::zeros(2, 5)).is_err());
    }
}
