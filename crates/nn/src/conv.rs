//! Convolutional layers operating on flattened `(C, H, W)` inputs.
//!
//! Activations are carried between layers as 2-D matrices with one sample per
//! row; convolutional layers interpret each row as a `channels × height ×
//! width` volume in row-major order. This keeps the rest of the stack (which
//! only understands matrices) unchanged while still offering convolutional
//! models for image-shaped synthetic data.

use crate::layer::Layer;
use crate::{NnError, Result};
use fedft_tensor::{init, rng, Matrix, TensorError};

/// Shape of an image-like activation volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolumeShape {
    /// Number of channels.
    pub channels: usize,
    /// Height in pixels.
    pub height: usize,
    /// Width in pixels.
    pub width: usize,
}

impl VolumeShape {
    /// Creates a new volume shape.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        VolumeShape {
            channels,
            height,
            width,
        }
    }

    /// Number of scalars in the volume.
    pub fn len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Returns `true` for a degenerate, empty volume.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// 2-D convolution with square kernels, stride 1 and zero padding.
#[derive(Debug, Clone)]
pub struct Conv2d {
    input_shape: VolumeShape,
    out_channels: usize,
    kernel: usize,
    padding: usize,
    /// Weights flattened as `(out_channels, in_channels * kernel * kernel)`.
    weight: Matrix,
    bias: Matrix,
    grad_weight: Matrix,
    grad_bias: Matrix,
    cached_input: Option<Matrix>,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the kernel does not fit the
    /// padded input.
    pub fn new(
        input_shape: VolumeShape,
        out_channels: usize,
        kernel: usize,
        padding: usize,
        seed: u64,
    ) -> Result<Self> {
        if kernel == 0
            || kernel > input_shape.height + 2 * padding
            || kernel > input_shape.width + 2 * padding
        {
            return Err(NnError::InvalidConfig {
                what: format!(
                    "conv kernel {kernel} incompatible with input {}x{} (padding {padding})",
                    input_shape.height, input_shape.width
                ),
            });
        }
        let fan_in = input_shape.channels * kernel * kernel;
        let mut r = rng::rng_for(seed, "conv-init");
        Ok(Conv2d {
            input_shape,
            out_channels,
            kernel,
            padding,
            weight: init::he_normal(&mut r, fan_in, out_channels),
            bias: Matrix::zeros(1, out_channels),
            grad_weight: Matrix::zeros(fan_in, out_channels),
            grad_bias: Matrix::zeros(1, out_channels),
            cached_input: None,
        })
    }

    /// Shape of the output volume.
    pub fn output_shape(&self) -> VolumeShape {
        VolumeShape {
            channels: self.out_channels,
            height: self.input_shape.height + 2 * self.padding + 1 - self.kernel,
            width: self.input_shape.width + 2 * self.padding + 1 - self.kernel,
        }
    }

    fn input_index(&self, c: usize, y: isize, x: isize) -> Option<usize> {
        if y < 0 || x < 0 {
            return None;
        }
        let (y, x) = (y as usize, x as usize);
        if y >= self.input_shape.height || x >= self.input_shape.width {
            return None;
        }
        Some(c * self.input_shape.height * self.input_shape.width + y * self.input_shape.width + x)
    }

    /// The convolution arithmetic shared by the training and frozen forward
    /// paths (the training flag does not affect a convolution).
    fn compute_forward(&self, input: &Matrix) -> Result<Matrix> {
        if input.cols() != self.input_shape.len() {
            return Err(NnError::Tensor(TensorError::ShapeMismatch {
                op: "conv2d_forward",
                lhs: input.shape(),
                rhs: (1, self.input_shape.len()),
            }));
        }
        let out_shape = self.output_shape();
        let mut out = Matrix::zeros(input.rows(), out_shape.len());
        for sample in 0..input.rows() {
            let row = input.row(sample);
            let out_row = out.row_mut(sample);
            for oc in 0..self.out_channels {
                for oy in 0..out_shape.height {
                    for ox in 0..out_shape.width {
                        let mut acc = self.bias.get(0, oc);
                        for ic in 0..self.input_shape.channels {
                            for ky in 0..self.kernel {
                                for kx in 0..self.kernel {
                                    let iy = oy as isize + ky as isize - self.padding as isize;
                                    let ix = ox as isize + kx as isize - self.padding as isize;
                                    if let Some(idx) = self.input_index(ic, iy, ix) {
                                        let w_row =
                                            ic * self.kernel * self.kernel + ky * self.kernel + kx;
                                        acc += row[idx] * self.weight.get(w_row, oc);
                                    }
                                }
                            }
                        }
                        out_row
                            [oc * out_shape.height * out_shape.width + oy * out_shape.width + ox] =
                            acc;
                    }
                }
            }
        }
        Ok(out)
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Matrix, _training: bool) -> Result<Matrix> {
        let out = self.compute_forward(input)?;
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn forward_frozen(&self, input: &Matrix) -> Result<Matrix> {
        self.compute_forward(input)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "conv2d" })?;
        let out_shape = self.output_shape();
        if grad_output.cols() != out_shape.len() || grad_output.rows() != input.rows() {
            return Err(NnError::Tensor(TensorError::ShapeMismatch {
                op: "conv2d_backward",
                lhs: grad_output.shape(),
                rhs: (input.rows(), out_shape.len()),
            }));
        }
        let mut grad_input = Matrix::zeros(input.rows(), input.cols());
        for sample in 0..input.rows() {
            let in_row = input.row(sample);
            let go_row = grad_output.row(sample);
            for oc in 0..self.out_channels {
                for oy in 0..out_shape.height {
                    for ox in 0..out_shape.width {
                        let go = go_row
                            [oc * out_shape.height * out_shape.width + oy * out_shape.width + ox];
                        if go == 0.0 {
                            continue;
                        }
                        self.grad_bias.set(0, oc, self.grad_bias.get(0, oc) + go);
                        for ic in 0..self.input_shape.channels {
                            for ky in 0..self.kernel {
                                for kx in 0..self.kernel {
                                    let iy = oy as isize + ky as isize - self.padding as isize;
                                    let ix = ox as isize + kx as isize - self.padding as isize;
                                    if let Some(idx) = self.input_index(ic, iy, ix) {
                                        let w_row =
                                            ic * self.kernel * self.kernel + ky * self.kernel + kx;
                                        let dw = self.grad_weight.get(w_row, oc) + in_row[idx] * go;
                                        self.grad_weight.set(w_row, oc, dw);
                                        let gi = grad_input.get(sample, idx)
                                            + self.weight.get(w_row, oc) * go;
                                        grad_input.set(sample, idx, gi);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_input)
    }

    fn params(&self) -> Vec<&Matrix> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Matrix> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn zero_grads(&mut self) {
        self.grad_weight.scale_assign(0.0);
        self.grad_bias.scale_assign(0.0);
    }

    fn forward_flops_per_sample(&self) -> u64 {
        let out = self.output_shape();
        2 * (out.len() * self.input_shape.channels * self.kernel * self.kernel) as u64
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// 2-D max pooling with a square window and matching stride.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    input_shape: VolumeShape,
    window: usize,
    argmax: Option<Vec<usize>>,
    cached_rows: usize,
}

impl MaxPool2d {
    /// Creates a max-pooling layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the window does not evenly
    /// divide the spatial dimensions.
    pub fn new(input_shape: VolumeShape, window: usize) -> Result<Self> {
        if window == 0
            || !input_shape.height.is_multiple_of(window)
            || !input_shape.width.is_multiple_of(window)
        {
            return Err(NnError::InvalidConfig {
                what: format!(
                    "pool window {window} must evenly divide {}x{}",
                    input_shape.height, input_shape.width
                ),
            });
        }
        Ok(MaxPool2d {
            input_shape,
            window,
            argmax: None,
            cached_rows: 0,
        })
    }

    /// Shape of the output volume.
    pub fn output_shape(&self) -> VolumeShape {
        VolumeShape {
            channels: self.input_shape.channels,
            height: self.input_shape.height / self.window,
            width: self.input_shape.width / self.window,
        }
    }

    /// The pooling arithmetic shared by the training and frozen forward
    /// paths; the argmax indices are only needed for a backward pass.
    fn compute_forward(&self, input: &Matrix) -> Result<(Matrix, Vec<usize>)> {
        if input.cols() != self.input_shape.len() {
            return Err(NnError::Tensor(TensorError::ShapeMismatch {
                op: "maxpool_forward",
                lhs: input.shape(),
                rhs: (1, self.input_shape.len()),
            }));
        }
        let out_shape = self.output_shape();
        let mut out = Matrix::zeros(input.rows(), out_shape.len());
        let mut argmax = vec![0usize; input.rows() * out_shape.len()];
        for sample in 0..input.rows() {
            let row = input.row(sample);
            for c in 0..self.input_shape.channels {
                for oy in 0..out_shape.height {
                    for ox in 0..out_shape.width {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for wy in 0..self.window {
                            for wx in 0..self.window {
                                let iy = oy * self.window + wy;
                                let ix = ox * self.window + wx;
                                let idx = c * self.input_shape.height * self.input_shape.width
                                    + iy * self.input_shape.width
                                    + ix;
                                if row[idx] > best {
                                    best = row[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let out_idx =
                            c * out_shape.height * out_shape.width + oy * out_shape.width + ox;
                        out.set(sample, out_idx, best);
                        argmax[sample * out_shape.len() + out_idx] = best_idx;
                    }
                }
            }
        }
        Ok((out, argmax))
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, input: &Matrix, _training: bool) -> Result<Matrix> {
        let (out, argmax) = self.compute_forward(input)?;
        self.argmax = Some(argmax);
        self.cached_rows = input.rows();
        Ok(out)
    }

    fn forward_frozen(&self, input: &Matrix) -> Result<Matrix> {
        Ok(self.compute_forward(input)?.0)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix> {
        let argmax = self
            .argmax
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "maxpool2d" })?;
        let out_shape = self.output_shape();
        if grad_output.rows() != self.cached_rows || grad_output.cols() != out_shape.len() {
            return Err(NnError::Tensor(TensorError::ShapeMismatch {
                op: "maxpool_backward",
                lhs: grad_output.shape(),
                rhs: (self.cached_rows, out_shape.len()),
            }));
        }
        let mut grad_input = Matrix::zeros(self.cached_rows, self.input_shape.len());
        for sample in 0..self.cached_rows {
            for out_idx in 0..out_shape.len() {
                let src = argmax[sample * out_shape.len() + out_idx];
                let g = grad_input.get(sample, src) + grad_output.get(sample, out_idx);
                grad_input.set(sample, src, g);
            }
        }
        Ok(grad_input)
    }

    fn params(&self) -> Vec<&Matrix> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Matrix> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}

    fn forward_flops_per_sample(&self) -> u64 {
        (self.input_shape.len()) as u64
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_shape_len() {
        let v = VolumeShape::new(3, 8, 8);
        assert_eq!(v.len(), 192);
        assert!(!v.is_empty());
        assert!(VolumeShape::new(0, 4, 4).is_empty());
    }

    #[test]
    fn conv_output_shape_with_padding() {
        let conv = Conv2d::new(VolumeShape::new(1, 5, 5), 2, 3, 1, 0).unwrap();
        assert_eq!(conv.output_shape(), VolumeShape::new(2, 5, 5));
        let conv = Conv2d::new(VolumeShape::new(1, 5, 5), 2, 3, 0, 0).unwrap();
        assert_eq!(conv.output_shape(), VolumeShape::new(2, 3, 3));
    }

    #[test]
    fn conv_rejects_oversized_kernel() {
        assert!(Conv2d::new(VolumeShape::new(1, 3, 3), 1, 7, 0, 0).is_err());
    }

    #[test]
    fn conv_identity_kernel_reproduces_input() {
        // 1x1 kernel with weight 1 and no bias is the identity map.
        let mut conv = Conv2d::new(VolumeShape::new(1, 3, 3), 1, 1, 0, 0).unwrap();
        conv.params_mut()[0].set(0, 0, 1.0);
        let weight_val = conv.params()[0].get(0, 0);
        assert_eq!(weight_val, 1.0);
        let x = Matrix::from_vec(1, 9, (1..=9).map(|v| v as f32).collect()).unwrap();
        let y = conv.forward(&x, true).unwrap();
        assert!(y.approx_eq(&x, 1e-6));
    }

    #[test]
    fn conv_known_sum_kernel() {
        // 2x2 kernel of all ones computes window sums.
        let mut conv = Conv2d::new(VolumeShape::new(1, 2, 2), 1, 2, 0, 0).unwrap();
        for r in 0..4 {
            conv.params_mut()[0].set(r, 0, 1.0);
        }
        let x = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = conv.forward(&x, true).unwrap();
        assert_eq!(y.shape(), (1, 1));
        assert!((y.get(0, 0) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn conv_input_gradient_matches_finite_difference() {
        let mut conv = Conv2d::new(VolumeShape::new(1, 3, 3), 2, 2, 0, 11).unwrap();
        let x = Matrix::from_vec(1, 9, (0..9).map(|v| v as f32 * 0.3 - 1.0).collect()).unwrap();
        let y = conv.forward(&x, true).unwrap();
        let grad_out = Matrix::full(y.rows(), y.cols(), 1.0);
        let analytic = conv.backward(&grad_out).unwrap();

        let eps = 1e-2;
        let mut probe = conv.clone();
        for c in 0..9 {
            let mut plus = x.clone();
            plus.set(0, c, x.get(0, c) + eps);
            let mut minus = x.clone();
            minus.set(0, c, x.get(0, c) - eps);
            let numeric = (probe.forward(&plus, true).unwrap().sum()
                - probe.forward(&minus, true).unwrap().sum())
                / (2.0 * eps);
            assert!(
                (numeric - analytic.get(0, c)).abs() < 1e-2,
                "at {c}: numeric {numeric} vs analytic {}",
                analytic.get(0, c)
            );
        }
    }

    #[test]
    fn conv_backward_requires_forward() {
        let mut conv = Conv2d::new(VolumeShape::new(1, 3, 3), 1, 2, 0, 0).unwrap();
        assert!(conv.backward(&Matrix::zeros(1, 4)).is_err());
    }

    #[test]
    fn maxpool_selects_maxima_and_routes_gradient() {
        let mut pool = MaxPool2d::new(VolumeShape::new(1, 2, 2), 2).unwrap();
        let x = Matrix::from_vec(1, 4, vec![1.0, 5.0, 2.0, 3.0]).unwrap();
        let y = pool.forward(&x, true).unwrap();
        assert_eq!(y.shape(), (1, 1));
        assert_eq!(y.get(0, 0), 5.0);
        let g = pool.backward(&Matrix::full(1, 1, 2.0)).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_rejects_nondivisible_window() {
        assert!(MaxPool2d::new(VolumeShape::new(1, 5, 5), 2).is_err());
    }

    #[test]
    fn maxpool_output_shape() {
        let pool = MaxPool2d::new(VolumeShape::new(3, 8, 8), 2).unwrap();
        assert_eq!(pool.output_shape(), VolumeShape::new(3, 4, 4));
    }

    #[test]
    fn conv_flops_positive() {
        let conv = Conv2d::new(VolumeShape::new(3, 8, 8), 4, 3, 1, 0).unwrap();
        assert!(conv.forward_flops_per_sample() > 0);
    }
}
