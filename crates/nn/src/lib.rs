//! # fedft-nn
//!
//! Neural-network substrate for the FedFT-EDS reproduction: layers with
//! manual forward/backward passes, a block-structured model mirroring the
//! paper's WRN layer groups, an SGD optimiser with momentum and an optional
//! FedProx proximal term, parameter (de)serialisation for client/server
//! communication, FLOP accounting for the training-time cost model, and a
//! centralised trainer used for pretraining and the "Centralised" baseline.
//!
//! The paper trains a WRN-16-1 on CIFAR with PyTorch; this substrate
//! substitutes a pure-Rust block MLP (plus a full `Conv2d` implementation for
//! users who want convolutional models) as documented in `DESIGN.md`. The
//! federated-learning mechanics only require a model that can be split into a
//! frozen lower part and a trainable upper part, which [`BlockNet`] provides.
//!
//! ## Example
//!
//! ```
//! use fedft_nn::{BlockNet, BlockNetConfig, FreezeLevel};
//! use fedft_tensor::Matrix;
//!
//! # fn main() -> Result<(), fedft_nn::NnError> {
//! let config = BlockNetConfig::new(8, 4).with_hidden(16, 16, 16);
//! let mut net = BlockNet::new(&config, 42);
//! let x = Matrix::zeros(2, 8);
//! let logits = net.forward(&x)?;
//! assert_eq!(logits.shape(), (2, 4));
//! assert!(net.trainable_parameter_count(FreezeLevel::Moderate)
//!     < net.trainable_parameter_count(FreezeLevel::Full));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod block;
pub mod conv;
pub mod flops;
pub mod freeze;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod optimizer;
pub mod params;
pub mod sequential;
pub mod suffix;
pub mod trainer;

pub use block::{BlockId, BlockNet, BlockNetConfig};
pub use error::NnError;
pub use freeze::FreezeLevel;
pub use layer::Layer;
pub use layers::{BatchNorm1d, Dense, Dropout, Relu};
pub use loss::SoftmaxCrossEntropy;
pub use optimizer::{ProximalTerm, Sgd, SgdConfig};
pub use params::ParamVector;
pub use sequential::Sequential;
pub use suffix::SuffixNet;
pub use trainer::{EvalReport, Trainer, TrainerConfig};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, NnError>;
