//! Freeze levels controlling which part of the model clients fine-tune.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which part of a [`crate::BlockNet`] is trainable during local updates.
///
/// The paper's WRN is organised in layer groups; FedFT freezes the lower
/// groups (the pretrained feature extractor `ϕ`) and fine-tunes only the
/// upper part `θ`. The ablation of Figure 10a sweeps exactly these four
/// settings.
///
/// | Variant | Frozen blocks | Trainable blocks |
/// |---|---|---|
/// | `Full` | none | low, mid, up, classifier |
/// | `Large` | low | mid, up, classifier |
/// | `Moderate` | low, mid | up, classifier |
/// | `Classifier` | low, mid, up | classifier |
///
/// `Moderate` corresponds to the paper's default setting ("fine-tuned from
/// layer 3, with layer 1 and layer 2 being fixed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FreezeLevel {
    /// Train the entire model (standard FedAvg/FedProx behaviour).
    Full,
    /// Freeze only the lowest block.
    Large,
    /// Freeze the lower two blocks; the paper's default FedFT setting.
    #[default]
    Moderate,
    /// Freeze everything except the classifier head.
    Classifier,
}

impl FreezeLevel {
    /// Number of leading blocks (out of the four block groups) that are
    /// frozen.
    pub fn frozen_blocks(self) -> usize {
        match self {
            FreezeLevel::Full => 0,
            FreezeLevel::Large => 1,
            FreezeLevel::Moderate => 2,
            FreezeLevel::Classifier => 3,
        }
    }

    /// All levels, ordered from most trainable to least trainable. Used by
    /// the Figure 10a ablation sweep.
    pub fn all() -> [FreezeLevel; 4] {
        [
            FreezeLevel::Full,
            FreezeLevel::Large,
            FreezeLevel::Moderate,
            FreezeLevel::Classifier,
        ]
    }
}

impl fmt::Display for FreezeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FreezeLevel::Full => "full",
            FreezeLevel::Large => "large",
            FreezeLevel::Moderate => "moderate",
            FreezeLevel::Classifier => "classifier",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frozen_block_counts_are_monotone() {
        let counts: Vec<usize> = FreezeLevel::all()
            .iter()
            .map(|l| l.frozen_blocks())
            .collect();
        assert_eq!(counts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn default_matches_paper_setting() {
        assert_eq!(FreezeLevel::default(), FreezeLevel::Moderate);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(FreezeLevel::Classifier.to_string(), "classifier");
        assert_eq!(FreezeLevel::Full.to_string(), "full");
    }

    #[test]
    fn serde_roundtrip_names() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<FreezeLevel>();
    }
}
