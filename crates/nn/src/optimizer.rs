//! Stochastic gradient descent with momentum, weight decay and an optional
//! FedProx proximal term.

use crate::params::ParamVector;
use crate::{NnError, Result};
use fedft_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the SGD optimiser.
///
/// The paper uses SGD with a learning rate of `0.1` and momentum `0.5` for
/// local updates, which is this type's [`Default`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Step size λ.
    pub learning_rate: f32,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            learning_rate: 0.1,
            momentum: 0.5,
            weight_decay: 0.0,
        }
    }
}

impl SgdConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the learning rate is not
    /// positive, the momentum is outside `[0, 1)` or the weight decay is
    /// negative.
    pub fn validate(&self) -> Result<()> {
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(NnError::InvalidConfig {
                what: format!("learning rate must be positive, got {}", self.learning_rate),
            });
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(NnError::InvalidConfig {
                what: format!("momentum must be in [0, 1), got {}", self.momentum),
            });
        }
        if self.weight_decay < 0.0 {
            return Err(NnError::InvalidConfig {
                what: format!(
                    "weight decay must be non-negative, got {}",
                    self.weight_decay
                ),
            });
        }
        Ok(())
    }
}

/// FedProx proximal regulariser `μ/2 · ‖w − w_global‖²` added to the local
/// objective; its gradient `μ · (w − w_global)` is applied inside the
/// optimiser step.
#[derive(Debug, Clone, PartialEq)]
pub struct ProximalTerm {
    /// Proximal coefficient μ.
    pub mu: f32,
    /// Flattened reference parameters (the global model at the start of the
    /// round), aligned with the parameters passed to [`Sgd::step`].
    pub reference: ParamVector,
}

/// SGD optimiser with momentum.
///
/// The optimiser keeps one velocity buffer per parameter tensor. The same
/// parameter tensors (same count, same shapes, same order) must be passed to
/// every [`Sgd::step`] call.
#[derive(Debug, Clone)]
pub struct Sgd {
    config: SgdConfig,
    velocities: Vec<Matrix>,
    proximal: Option<ProximalTerm>,
}

impl Sgd {
    /// Creates an optimiser with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when the configuration is invalid.
    pub fn new(config: SgdConfig) -> Result<Self> {
        config.validate()?;
        Ok(Sgd {
            config,
            velocities: Vec::new(),
            proximal: None,
        })
    }

    /// The optimiser configuration.
    pub fn config(&self) -> SgdConfig {
        self.config
    }

    /// Installs (or clears) a FedProx proximal term.
    pub fn set_proximal(&mut self, proximal: Option<ProximalTerm>) {
        self.proximal = proximal;
    }

    /// Returns the currently installed proximal term, if any.
    pub fn proximal(&self) -> Option<&ProximalTerm> {
        self.proximal.as_ref()
    }

    /// Applies one SGD update to `params` using `grads`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the number of parameter tensors
    /// changes between calls, a tensor error if shapes are inconsistent, or
    /// [`NnError::ParamLengthMismatch`] if the proximal reference does not
    /// match the total parameter size.
    pub fn step(&mut self, params: &mut [&mut Matrix], grads: &[&Matrix]) -> Result<()> {
        if params.len() != grads.len() {
            return Err(NnError::InvalidConfig {
                what: format!(
                    "parameter/gradient count mismatch: {} vs {}",
                    params.len(),
                    grads.len()
                ),
            });
        }
        if self.velocities.is_empty() {
            self.velocities = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
        }
        if self.velocities.len() != params.len() {
            return Err(NnError::InvalidConfig {
                what: format!(
                    "optimiser was initialised with {} tensors but received {}",
                    self.velocities.len(),
                    params.len()
                ),
            });
        }
        if let Some(prox) = &self.proximal {
            let total: usize = params.iter().map(|p| p.len()).sum();
            if prox.reference.len() != total {
                return Err(NnError::ParamLengthMismatch {
                    expected: total,
                    found: prox.reference.len(),
                });
            }
        }

        let mut offset = 0usize;
        for ((param, grad), velocity) in params
            .iter_mut()
            .zip(grads.iter())
            .zip(self.velocities.iter_mut())
        {
            if param.shape() != grad.shape() || param.shape() != velocity.shape() {
                return Err(NnError::Tensor(fedft_tensor::TensorError::ShapeMismatch {
                    op: "sgd_step",
                    lhs: param.shape(),
                    rhs: grad.shape(),
                }));
            }
            let n = param.len();
            let reference = self
                .proximal
                .as_ref()
                .map(|p| (&p.reference.values()[offset..offset + n], p.mu));
            let param_slice = param.as_mut_slice();
            let grad_slice = grad.as_slice();
            let vel_slice = velocity.as_mut_slice();
            for i in 0..n {
                let mut g = grad_slice[i] + self.config.weight_decay * param_slice[i];
                if let Some((reference, mu)) = reference {
                    g += mu * (param_slice[i] - reference[i]);
                }
                vel_slice[i] = self.config.momentum * vel_slice[i] + g;
                param_slice[i] -= self.config.learning_rate * vel_slice[i];
            }
            offset += n;
        }
        Ok(())
    }

    /// Clears momentum buffers (used when a client restarts local training
    /// from a freshly downloaded global model).
    pub fn reset_state(&mut self) {
        self.velocities.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(param: &Matrix) -> Matrix {
        // Gradient of f(w) = 0.5 * ||w||^2 is w.
        param.clone()
    }

    #[test]
    fn config_validation() {
        assert!(SgdConfig::default().validate().is_ok());
        assert!(SgdConfig {
            learning_rate: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SgdConfig {
            momentum: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SgdConfig {
            weight_decay: -0.1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(Sgd::new(SgdConfig {
            learning_rate: -1.0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn default_matches_paper_hyperparameters() {
        let c = SgdConfig::default();
        assert_eq!(c.learning_rate, 0.1);
        assert_eq!(c.momentum, 0.5);
    }

    #[test]
    fn plain_sgd_minimises_quadratic() {
        let mut sgd = Sgd::new(SgdConfig {
            learning_rate: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        })
        .unwrap();
        let mut w = Matrix::full(2, 2, 10.0);
        for _ in 0..200 {
            let g = quadratic_grad(&w);
            sgd.step(&mut [&mut w], &[&g]).unwrap();
        }
        assert!(w.norm() < 1e-3, "did not converge: norm={}", w.norm());
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |momentum: f32| {
            let mut sgd = Sgd::new(SgdConfig {
                learning_rate: 0.05,
                momentum,
                weight_decay: 0.0,
            })
            .unwrap();
            let mut w = Matrix::full(1, 4, 5.0);
            for _ in 0..30 {
                let g = quadratic_grad(&w);
                sgd.step(&mut [&mut w], &[&g]).unwrap();
            }
            w.norm()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut sgd = Sgd::new(SgdConfig {
            learning_rate: 0.1,
            momentum: 0.0,
            weight_decay: 0.5,
        })
        .unwrap();
        let mut w = Matrix::full(1, 3, 1.0);
        let zero_grad = Matrix::zeros(1, 3);
        sgd.step(&mut [&mut w], &[&zero_grad]).unwrap();
        assert!(w.max() < 1.0);
    }

    #[test]
    fn proximal_term_pulls_towards_reference() {
        let reference = ParamVector::from_values(vec![1.0, 1.0, 1.0]);
        let mut sgd = Sgd::new(SgdConfig {
            learning_rate: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        })
        .unwrap();
        sgd.set_proximal(Some(ProximalTerm { mu: 1.0, reference }));
        let mut w = Matrix::full(1, 3, 5.0);
        let zero_grad = Matrix::zeros(1, 3);
        for _ in 0..300 {
            sgd.step(&mut [&mut w], &[&zero_grad]).unwrap();
        }
        // With zero task gradient the proximal term drags w to the reference.
        for &v in w.as_slice() {
            assert!((v - 1.0).abs() < 1e-2, "w={v}");
        }
    }

    #[test]
    fn proximal_length_is_validated() {
        let mut sgd = Sgd::new(SgdConfig::default()).unwrap();
        sgd.set_proximal(Some(ProximalTerm {
            mu: 0.1,
            reference: ParamVector::from_values(vec![0.0; 2]),
        }));
        let mut w = Matrix::zeros(1, 3);
        let g = Matrix::zeros(1, 3);
        assert!(matches!(
            sgd.step(&mut [&mut w], &[&g]).unwrap_err(),
            NnError::ParamLengthMismatch { .. }
        ));
    }

    #[test]
    fn mismatched_counts_and_shapes_error() {
        let mut sgd = Sgd::new(SgdConfig::default()).unwrap();
        let mut w = Matrix::zeros(1, 3);
        assert!(sgd.step(&mut [&mut w], &[]).is_err());
        let g = Matrix::zeros(2, 2);
        assert!(sgd.step(&mut [&mut w], &[&g]).is_err());
    }

    #[test]
    fn reset_state_allows_new_topology() {
        let mut sgd = Sgd::new(SgdConfig::default()).unwrap();
        let mut a = Matrix::zeros(1, 2);
        let ga = Matrix::zeros(1, 2);
        sgd.step(&mut [&mut a], &[&ga]).unwrap();
        // Different number of tensors without reset -> error.
        let mut b = Matrix::zeros(1, 2);
        let gb = Matrix::zeros(1, 2);
        assert!(sgd.step(&mut [&mut a, &mut b], &[&ga, &gb]).is_err());
        sgd.reset_state();
        assert!(sgd.step(&mut [&mut a, &mut b], &[&ga, &gb]).is_ok());
    }
}
