//! Softmax cross-entropy loss.

use crate::{NnError, Result};
use fedft_tensor::{stats, Matrix};

/// Combined softmax + cross-entropy loss with integer targets.
///
/// Combining the two yields the numerically pleasant gradient
/// `softmax(logits) - one_hot(labels)` (averaged over the batch).
///
/// # Example
///
/// ```
/// use fedft_nn::SoftmaxCrossEntropy;
/// use fedft_tensor::Matrix;
///
/// # fn main() -> Result<(), fedft_nn::NnError> {
/// let loss = SoftmaxCrossEntropy::new();
/// let logits = Matrix::from_rows(&[vec![5.0, 0.0], vec![0.0, 5.0]]).unwrap();
/// let (value, grad) = loss.forward_backward(&logits, &[0, 1])?;
/// assert!(value < 0.1);           // confident and correct -> small loss
/// assert_eq!(grad.shape(), (2, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy {
    _private: (),
}

impl SoftmaxCrossEntropy {
    /// Creates the loss function.
    pub fn new() -> Self {
        SoftmaxCrossEntropy { _private: () }
    }

    /// Computes the mean cross-entropy loss over the batch.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes and labels are inconsistent.
    pub fn loss(&self, logits: &Matrix, labels: &[usize]) -> Result<f32> {
        self.check(logits, labels)?;
        let log_probs = stats::log_softmax(logits)?;
        let mut total = 0.0_f32;
        for (i, &label) in labels.iter().enumerate() {
            total -= log_probs.get(i, label);
        }
        Ok(total / labels.len() as f32)
    }

    /// Computes the loss value and the gradient with respect to the logits.
    ///
    /// The gradient is already divided by the batch size, so downstream
    /// layers receive the gradient of the *mean* loss.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes and labels are inconsistent.
    pub fn forward_backward(&self, logits: &Matrix, labels: &[usize]) -> Result<(f32, Matrix)> {
        self.check(logits, labels)?;
        let probs = stats::softmax(logits)?;
        let log_probs = stats::log_softmax(logits)?;
        let n = labels.len() as f32;
        let mut grad = probs;
        let mut total = 0.0_f32;
        for (i, &label) in labels.iter().enumerate() {
            total -= log_probs.get(i, label);
            grad.set(i, label, grad.get(i, label) - 1.0);
        }
        grad.scale_assign(1.0 / n);
        Ok((total / n, grad))
    }

    fn check(&self, logits: &Matrix, labels: &[usize]) -> Result<()> {
        if logits.rows() == 0 || logits.rows() != labels.len() {
            return Err(NnError::Tensor(fedft_tensor::TensorError::ShapeMismatch {
                op: "cross_entropy",
                lhs: logits.shape(),
                rhs: (labels.len(), 1),
            }));
        }
        for &label in labels {
            if label >= logits.cols() {
                return Err(NnError::LabelOutOfRange {
                    label,
                    num_classes: logits.cols(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Matrix::zeros(4, 10);
        let value = loss.loss(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((value - (10.0_f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_predictions_have_small_loss() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Matrix::from_rows(&[vec![10.0, 0.0], vec![0.0, 10.0]]).unwrap();
        assert!(loss.loss(&logits, &[0, 1]).unwrap() < 1e-3);
        assert!(loss.loss(&logits, &[1, 0]).unwrap() > 5.0);
    }

    #[test]
    fn gradient_matches_softmax_minus_onehot() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Matrix::from_rows(&[vec![1.0, 2.0, 0.5]]).unwrap();
        let (_, grad) = loss.forward_backward(&logits, &[1]).unwrap();
        let probs = stats::softmax(&logits).unwrap();
        assert!((grad.get(0, 0) - probs.get(0, 0)).abs() < 1e-6);
        assert!((grad.get(0, 1) - (probs.get(0, 1) - 1.0)).abs() < 1e-6);
        // Gradient rows sum to zero.
        assert!(grad.sum_rows().as_slice().iter().all(|_| true));
        assert!(grad.row(0).iter().sum::<f32>().abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Matrix::from_rows(&[vec![0.3, -0.7, 1.2], vec![2.0, 0.0, -1.0]]).unwrap();
        let labels = [2, 0];
        let (_, grad) = loss.forward_backward(&logits, &labels).unwrap();
        let eps = 1e-2;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = logits.clone();
                plus.set(r, c, logits.get(r, c) + eps);
                let mut minus = logits.clone();
                minus.set(r, c, logits.get(r, c) - eps);
                let numeric = (loss.loss(&plus, &labels).unwrap()
                    - loss.loss(&minus, &labels).unwrap())
                    / (2.0 * eps);
                assert!((numeric - grad.get(r, c)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn rejects_bad_labels_and_shapes() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Matrix::zeros(2, 3);
        assert!(matches!(
            loss.loss(&logits, &[0, 5]).unwrap_err(),
            NnError::LabelOutOfRange { label: 5, .. }
        ));
        assert!(loss.loss(&logits, &[0]).is_err());
        assert!(loss.loss(&Matrix::zeros(0, 3), &[]).is_err());
    }
}
