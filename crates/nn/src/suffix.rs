//! The trainable suffix `θ` of a [`crate::BlockNet`], detached from the
//! frozen backbone `ϕ`.
//!
//! Partial fine-tuning only ever trains the blocks above the freeze
//! boundary, so a client does not need its own copy of the backbone: it can
//! share the server's model for the (read-only) frozen forward pass and keep
//! a private [`SuffixNet`] — an `O(|θ|)` snapshot of just the trainable
//! blocks — for local training. All suffix arithmetic lives in the
//! crate-private helpers below, which [`crate::BlockNet`] delegates to as
//! well, so the full-model and split paths are the *same code* on the same
//! inputs and therefore produce bit-identical results.

use crate::freeze::FreezeLevel;
use crate::loss::SoftmaxCrossEntropy;
use crate::optimizer::Sgd;
use crate::params::ParamVector;
use crate::sequential::Sequential;
use crate::Result;
use fedft_tensor::{stats, Matrix};

/// Forward pass through a run of blocks, starting from boundary activations.
pub(crate) fn forward_blocks(
    blocks: &mut [Sequential],
    input: &Matrix,
    training: bool,
) -> Result<Matrix> {
    let mut current = input.clone();
    for block in blocks {
        current = block.forward(&current, training)?;
    }
    Ok(current)
}

/// Inference forward pass through a run of blocks over a batch of
/// independent boundary-activation matrices, layer-major so shared
/// parameters are packed once per layer (see
/// [`Sequential::forward_frozen_batch`]). Bit-identical per item to
/// [`forward_blocks`] with `training = false`.
pub(crate) fn forward_blocks_inference_batch(
    blocks: &[Sequential],
    inputs: &[&Matrix],
) -> Result<Vec<Matrix>> {
    let mut current: Vec<Matrix> = inputs.iter().map(|&m| m.clone()).collect();
    for block in blocks {
        let refs: Vec<&Matrix> = current.iter().collect();
        current = block.forward_frozen_batch(&refs)?;
    }
    Ok(current)
}

/// One training step on a run of blocks: forward from the boundary
/// activations, loss, backward through every block, optimiser step.
///
/// This is the single implementation of the suffix training step;
/// [`crate::BlockNet::train_batch`] and [`SuffixNet::train_batch`] both
/// lower to it, which is what pins their bit-identity.
pub(crate) fn train_blocks(
    blocks: &mut [Sequential],
    loss: &SoftmaxCrossEntropy,
    input: &Matrix,
    labels: &[usize],
    optimizer: &mut Sgd,
) -> Result<f32> {
    let logits = forward_blocks(blocks, input, true)?;
    let (loss_value, mut grad) = loss.forward_backward(&logits, labels)?;
    for block in blocks.iter_mut() {
        block.zero_grads();
    }
    // Backward through the trainable blocks only, in reverse order.
    for block in blocks.iter_mut().rev() {
        grad = block.backward(&grad)?;
    }
    let grads: Vec<Matrix> = blocks
        .iter()
        .flat_map(|b| b.grads().into_iter().cloned())
        .collect();
    let mut params: Vec<&mut Matrix> = blocks.iter_mut().flat_map(|b| b.params_mut()).collect();
    let grad_refs: Vec<&Matrix> = grads.iter().collect();
    optimizer.step(&mut params, &grad_refs)?;
    Ok(loss_value)
}

/// The trainable part `θ` of a block network under a fixed freeze level.
///
/// A `SuffixNet` is produced by [`crate::BlockNet::trainable_suffix`]: it
/// clones only the blocks above the freeze boundary, so a client holding one
/// costs `O(|θ|)` memory instead of `O(|ϕ| + |θ|)` for a full model clone.
/// Its inputs are **boundary activations** — the output of
/// [`crate::BlockNet::forward_frozen`] on raw features (or a cached copy of
/// it), never the raw features themselves (except at
/// [`FreezeLevel::Full`], where the boundary *is* the input).
#[derive(Debug, Clone)]
pub struct SuffixNet {
    blocks: Vec<Sequential>,
    freeze: FreezeLevel,
    loss: SoftmaxCrossEntropy,
}

impl SuffixNet {
    /// Builds a suffix from pre-cloned trainable blocks.
    pub(crate) fn from_blocks(blocks: Vec<Sequential>, freeze: FreezeLevel) -> Self {
        SuffixNet {
            blocks,
            freeze,
            loss: SoftmaxCrossEntropy::new(),
        }
    }

    /// The freeze level this suffix was split at.
    pub fn freeze(&self) -> FreezeLevel {
        self.freeze
    }

    /// Number of trainable blocks in the suffix.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of trainable scalar parameters.
    pub fn trainable_parameter_count(&self) -> usize {
        self.blocks.iter().map(|b| b.parameter_count()).sum()
    }

    /// Forward pass from boundary activations to logits.
    ///
    /// # Errors
    ///
    /// Returns an error if the boundary width does not match the first
    /// trainable block.
    pub fn forward(&mut self, boundary: &Matrix, training: bool) -> Result<Matrix> {
        forward_blocks(&mut self.blocks, boundary, training)
    }

    /// Class probabilities from boundary activations, using a softmax with
    /// the given temperature (the paper's hardened softmax for ρ < 1).
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn predict_proba(&mut self, boundary: &Matrix, temperature: f32) -> Result<Matrix> {
        let logits = self.forward(boundary, false)?;
        Ok(stats::softmax_with_temperature(&logits, temperature)?)
    }

    /// Inference forward pass over a **batch** of independent boundary
    /// matrices (one per client, typically), producing each one's logits.
    ///
    /// Layer-major: every dense layer packs its shared weight matrix once
    /// and sweeps the whole batch, amortising packing cost the per-client
    /// `forward` cannot recover. Each output is bit-identical to
    /// [`SuffixNet::forward`] with `training = false` on the same boundary.
    ///
    /// # Errors
    ///
    /// Returns an error if any boundary width does not match the first
    /// trainable block.
    pub fn forward_inference_batch(&self, boundaries: &[&Matrix]) -> Result<Vec<Matrix>> {
        forward_blocks_inference_batch(&self.blocks, boundaries)
    }

    /// Class probabilities for a batch of boundary matrices, using a softmax
    /// with the given temperature. Bit-identical per item to
    /// [`SuffixNet::predict_proba`].
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn predict_proba_batch(
        &self,
        boundaries: &[&Matrix],
        temperature: f32,
    ) -> Result<Vec<Matrix>> {
        self.forward_inference_batch(boundaries)?
            .iter()
            .map(|logits| Ok(stats::softmax_with_temperature(logits, temperature)?))
            .collect()
    }

    /// One training step on a batch of boundary activations; returns the
    /// batch loss. Bit-identical to [`crate::BlockNet::train_batch`] on the
    /// same boundary activations (both lower to the same implementation).
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch, invalid labels, or optimiser
    /// misconfiguration.
    pub fn train_batch(
        &mut self,
        boundary: &Matrix,
        labels: &[usize],
        optimizer: &mut Sgd,
    ) -> Result<f32> {
        train_blocks(&mut self.blocks, &self.loss, boundary, labels, optimizer)
    }

    /// Flattens the suffix parameters (`θ`) into a vector, in the same order
    /// as [`crate::BlockNet::trainable_vector`] at the matching freeze level.
    pub fn trainable_vector(&self) -> ParamVector {
        let params: Vec<&Matrix> = self.blocks.iter().flat_map(|b| b.params()).collect();
        ParamVector::from_params(&params)
    }

    /// Writes a flattened `θ` vector back into the suffix.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::ParamLengthMismatch`] when the vector length
    /// does not match the suffix parameter count.
    pub fn set_trainable_vector(&mut self, vector: &ParamVector) -> Result<()> {
        let mut params: Vec<&mut Matrix> = self
            .blocks
            .iter_mut()
            .flat_map(|b| b.params_mut())
            .collect();
        vector.write_to(&mut params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockNet, BlockNetConfig};
    use crate::optimizer::SgdConfig;

    fn net() -> BlockNet {
        BlockNet::new(&BlockNetConfig::new(6, 3).with_hidden(8, 8, 8), 11)
    }

    #[test]
    fn suffix_mirrors_the_trainable_part_of_the_model() {
        let model = net();
        for freeze in FreezeLevel::all() {
            let suffix = model.trainable_suffix(freeze);
            assert_eq!(suffix.freeze(), freeze);
            assert_eq!(suffix.num_blocks(), 4 - freeze.frozen_blocks());
            assert_eq!(
                suffix.trainable_parameter_count(),
                model.trainable_parameter_count(freeze)
            );
            assert_eq!(suffix.trainable_vector(), model.trainable_vector(freeze));
        }
    }

    #[test]
    fn suffix_forward_from_boundary_matches_full_forward() {
        let mut model = net();
        let x = Matrix::from_rows(&[
            vec![0.5, -1.0, 2.0, 0.1, -0.3, 0.7],
            vec![1.5, 0.3, -0.7, 0.0, 0.9, -0.2],
        ])
        .unwrap();
        let full = model.forward(&x).unwrap();
        for freeze in FreezeLevel::all() {
            let boundary = model.forward_frozen(freeze, &x).unwrap();
            let mut suffix = model.trainable_suffix(freeze);
            let split = suffix.forward(&boundary, false).unwrap();
            assert_eq!(full, split, "freeze {freeze}");
        }
    }

    #[test]
    fn suffix_training_is_bit_identical_to_full_model_training() {
        let freeze = FreezeLevel::Moderate;
        let mut model = net();
        let mut suffix = net().trainable_suffix(freeze);
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.5, -0.5, 0.2, 0.1],
            vec![0.0, 1.0, -0.5, 0.5, -0.2, 0.3],
        ])
        .unwrap();
        let labels = [1usize, 2];
        let mut sgd_a = Sgd::new(SgdConfig::default()).unwrap();
        let mut sgd_b = Sgd::new(SgdConfig::default()).unwrap();
        for _ in 0..5 {
            let boundary = model.forward_frozen(freeze, &x).unwrap();
            let loss_full = model.train_batch(&x, &labels, &mut sgd_a, freeze).unwrap();
            let loss_suffix = suffix.train_batch(&boundary, &labels, &mut sgd_b).unwrap();
            assert_eq!(loss_full.to_bits(), loss_suffix.to_bits());
        }
        assert_eq!(model.trainable_vector(freeze), suffix.trainable_vector());
    }

    #[test]
    fn batch_inference_is_bit_identical_to_per_item_forward() {
        let model = net();
        let boundaries: Vec<Matrix> = (0..4)
            .map(|i| {
                Matrix::from_rows(&[
                    vec![0.1 * i as f32, -0.5, 1.0, 0.2, -0.3, 0.7],
                    vec![1.5, 0.3 - i as f32, -0.7, 0.0, 0.9, -0.2],
                    vec![-0.4, 0.8, 0.6, -1.1, 0.5, 0.3 * i as f32],
                ])
                .unwrap()
            })
            .collect();
        for freeze in FreezeLevel::all() {
            let mut suffix = model.trainable_suffix(freeze);
            let inputs: Vec<Matrix> = boundaries
                .iter()
                .map(|x| model.forward_frozen(freeze, x).unwrap())
                .collect();
            let refs: Vec<&Matrix> = inputs.iter().collect();
            let batched = suffix.forward_inference_batch(&refs).unwrap();
            let proba_batched = suffix.predict_proba_batch(&refs, 0.1).unwrap();
            for (i, input) in inputs.iter().enumerate() {
                assert_eq!(
                    batched[i],
                    suffix.forward(input, false).unwrap(),
                    "freeze {freeze}, item {i}"
                );
                assert_eq!(
                    proba_batched[i],
                    suffix.predict_proba(input, 0.1).unwrap(),
                    "freeze {freeze}, item {i}"
                );
            }
        }
    }

    #[test]
    fn batch_inference_propagates_shape_errors() {
        let model = net();
        let suffix = model.trainable_suffix(FreezeLevel::Classifier);
        let good = Matrix::zeros(2, 8);
        let bad = Matrix::zeros(2, 5);
        assert!(suffix.forward_inference_batch(&[&good, &bad]).is_err());
        assert!(suffix.forward_inference_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn set_trainable_vector_roundtrip_and_length_check() {
        let model = net();
        let mut suffix = net().trainable_suffix(FreezeLevel::Classifier);
        let theta = model.trainable_vector(FreezeLevel::Classifier);
        suffix.set_trainable_vector(&theta).unwrap();
        assert_eq!(suffix.trainable_vector(), theta);
        let bad = ParamVector::from_values(vec![0.0; 2]);
        assert!(suffix.set_trainable_vector(&bad).is_err());
    }
}
