//! Error type for the neural-network crate.

use fedft_tensor::TensorError;
use std::fmt;

/// Error produced by model construction, training or parameter transport.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed (shape mismatch etc.).
    Tensor(TensorError),
    /// A parameter vector had the wrong length for the target model slice.
    ParamLengthMismatch {
        /// Number of values expected by the model.
        expected: usize,
        /// Number of values provided.
        found: usize,
    },
    /// `backward` was called before `forward` on a layer that caches inputs.
    BackwardBeforeForward {
        /// Name of the offending layer.
        layer: &'static str,
    },
    /// The model or trainer received an invalid configuration value.
    InvalidConfig {
        /// Description of the invalid field.
        what: String,
    },
    /// Labels were inconsistent with the model output dimension.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes the model produces.
        num_classes: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::ParamLengthMismatch { expected, found } => write!(
                f,
                "parameter vector length mismatch: expected {expected}, found {found}"
            ),
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "backward called before forward on layer `{layer}`")
            }
            NnError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            NnError::LabelOutOfRange { label, num_classes } => write!(
                f,
                "label {label} out of range for a model with {num_classes} classes"
            ),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(value: TensorError) -> Self {
        NnError::Tensor(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = NnError::ParamLengthMismatch {
            expected: 10,
            found: 4,
        };
        assert!(e.to_string().contains("10"));
        let e = NnError::BackwardBeforeForward { layer: "dense" };
        assert!(e.to_string().contains("dense"));
        let e = NnError::InvalidConfig {
            what: "learning rate must be positive".into(),
        };
        assert!(e.to_string().contains("learning rate"));
        let e = NnError::LabelOutOfRange {
            label: 7,
            num_classes: 5,
        };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn tensor_error_converts_and_sources() {
        use std::error::Error;
        let te = TensorError::EmptyMatrix { op: "softmax" };
        let ne: NnError = te.clone().into();
        assert!(ne.to_string().contains("softmax"));
        assert!(ne.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
