//! Learning-curve and learning-efficiency summaries.

use fedft_core::RunResult;
use serde::{Deserialize, Serialize};

/// One point of the learning-efficiency scatter plots (Figures 6 and 7):
/// a method's best accuracy against its accuracy-per-second efficiency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyPoint {
    /// Method label.
    pub label: String,
    /// Best test accuracy over the run, in percentage points.
    pub best_accuracy_pct: f64,
    /// Learning efficiency: accuracy points per simulated client second,
    /// under the paper-faithful workload accounting (frozen prefix
    /// recomputed every batch and selection pass).
    pub efficiency: f64,
    /// Total simulated client seconds of the run (paper-faithful).
    pub total_client_seconds: f64,
    /// Learning efficiency under the **cached** workload accounting:
    /// frozen-prefix activations served from a feature cache, so clients
    /// only pay for the trainable suffix. Quantifies the extra headroom
    /// partial training offers once frozen work is memoised on-device.
    pub cached_efficiency: f64,
    /// Total simulated client seconds of the run under the cached
    /// accounting.
    pub total_client_seconds_cached: f64,
}

/// Builds the learning-efficiency points for a collection of runs, carrying
/// both workload accountings (paper-faithful and cached).
pub fn efficiency_points(runs: &[RunResult]) -> Vec<EfficiencyPoint> {
    runs.iter()
        .map(|run| EfficiencyPoint {
            label: run.label.clone(),
            best_accuracy_pct: f64::from(run.best_accuracy()) * 100.0,
            efficiency: run.learning_efficiency(),
            total_client_seconds: run.total_client_seconds(),
            cached_efficiency: run.cached_learning_efficiency(),
            total_client_seconds_cached: run.total_client_seconds_cached(),
        })
        .collect()
}

/// A learning curve: per-round test accuracies (in percentage points) for one
/// method, as plotted in Figures 5, 8 and 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearningCurve {
    /// Method label.
    pub label: String,
    /// Per-round accuracy in percentage points, index 0 is round 1.
    pub accuracy_pct: Vec<f64>,
}

/// Extracts learning curves from a collection of runs.
pub fn learning_curves(runs: &[RunResult]) -> Vec<LearningCurve> {
    runs.iter()
        .map(|run| LearningCurve {
            label: run.label.clone(),
            accuracy_pct: run
                .accuracy_curve()
                .into_iter()
                .map(|a| f64::from(a) * 100.0)
                .collect(),
        })
        .collect()
}

/// Area under the accuracy curve, normalised by the number of rounds — a
/// convergence-speed summary (higher is faster/better).
pub fn normalised_auc(run: &RunResult) -> f64 {
    if run.rounds.is_empty() {
        return 0.0;
    }
    let total: f64 = run.rounds.iter().map(|r| f64::from(r.test_accuracy)).sum();
    total / run.rounds.len() as f64
}

/// Relative efficiency of `candidate` over `reference` (e.g. FedFT-EDS over
/// FedAvg): how many times more accuracy per second the candidate achieves.
/// Returns `f64::INFINITY` when the reference has zero efficiency.
pub fn efficiency_ratio(candidate: &RunResult, reference: &RunResult) -> f64 {
    let reference_eff = reference.learning_efficiency();
    if reference_eff <= 0.0 {
        return f64::INFINITY;
    }
    candidate.learning_efficiency() / reference_eff
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedft_core::RoundRecord;

    fn run(label: &str, accs: &[f32], seconds_per_round: f64) -> RunResult {
        let rounds = accs
            .iter()
            .enumerate()
            .map(|(i, &acc)| RoundRecord {
                round: i + 1,
                test_accuracy: acc,
                test_loss: 1.0 - acc,
                mean_train_loss: 0.1,
                participants: 4,
                dropped_clients: 0,
                tier_participants: vec![4],
                selected_samples: 40,
                update_staleness: vec![0; 4],
                round_client_seconds: seconds_per_round,
                cumulative_client_seconds: seconds_per_round * (i + 1) as f64,
                round_client_seconds_cached: seconds_per_round / 2.0,
                cumulative_client_seconds_cached: seconds_per_round * (i + 1) as f64 / 2.0,
                round_wall_seconds: seconds_per_round,
                cumulative_wall_seconds: seconds_per_round * (i + 1) as f64,
                cache_hits: 0,
                cache_misses: 0,
                cache_evictions: 0,
                cache_peak_bytes: 0,
                flush: None,
            })
            .collect();
        RunResult::new(label, rounds)
    }

    #[test]
    fn efficiency_points_extract_summaries() {
        let runs = vec![
            run("fast", &[0.4, 0.6], 1.0),
            run("slow", &[0.5, 0.7], 10.0),
        ];
        let points = efficiency_points(&runs);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].label, "fast");
        assert!((points[0].best_accuracy_pct - 60.0).abs() < 1e-3);
        assert!(points[0].efficiency > points[1].efficiency);
        assert!((points[1].total_client_seconds - 20.0).abs() < 1e-9);
        // The cached accounting rides along: the helper records half the
        // paper-faithful seconds per round, so cached efficiency doubles.
        assert!((points[1].total_client_seconds_cached - 10.0).abs() < 1e-9);
        assert!((points[0].cached_efficiency - 2.0 * points[0].efficiency).abs() < 1e-9);
    }

    #[test]
    fn learning_curves_are_percentages() {
        let curves = learning_curves(&[run("m", &[0.25, 0.5], 1.0)]);
        assert_eq!(curves[0].accuracy_pct, vec![25.0, 50.0]);
    }

    #[test]
    fn normalised_auc_behaviour() {
        assert_eq!(normalised_auc(&RunResult::new("empty", vec![])), 0.0);
        let fast = run("fast", &[0.5, 0.6, 0.7], 1.0);
        let slow = run("slow", &[0.1, 0.2, 0.7], 1.0);
        assert!(normalised_auc(&fast) > normalised_auc(&slow));
    }

    #[test]
    fn efficiency_ratio_compares_methods() {
        let cheap = run("cheap", &[0.6], 1.0);
        let expensive = run("expensive", &[0.6], 3.0);
        let ratio = efficiency_ratio(&cheap, &expensive);
        assert!((ratio - 3.0).abs() < 1e-9);
        assert_eq!(
            efficiency_ratio(&cheap, &RunResult::new("zero", vec![])),
            f64::INFINITY
        );
    }
}
