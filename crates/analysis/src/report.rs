//! Table builders for the experiment harness.
//!
//! Every experiment binary prints its results as plain-text/Markdown tables
//! (the same rows the paper reports) and can export CSV for further
//! processing; this module provides the shared formatting.

use serde::{Deserialize, Serialize};

/// A simple rectangular table with a header row.
///
/// # Example
///
/// ```
/// use fedft_analysis::Table;
///
/// let mut table = Table::new(vec!["Method".into(), "Accuracy".into()]);
/// table.add_row(vec!["FedAvg".into(), "75.2".into()]).unwrap();
/// let markdown = table.to_markdown();
/// assert!(markdown.contains("| FedAvg | 75.2 |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Appends a data row.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message when the row width does not match the
    /// header width.
    pub fn add_row(&mut self, row: Vec<String>) -> Result<(), String> {
        if row.len() != self.headers.len() {
            return Err(format!(
                "row has {} cells but the table has {} columns",
                row.len(),
                self.headers.len()
            ));
        }
        self.rows.push(row);
        Ok(())
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Renders the table as CSV with a header line.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as aligned plain text for terminal output.
    pub fn to_plain_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let render_row = |cells: &[String]| {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(cell, &w)| format!("{cell:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = render_row(&self.headers);
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction in `[0, 1]` as a percentage with two decimals.
pub fn pct(value: f64) -> String {
    format!("{:.2}", value * 100.0)
}

/// Formats a learning-efficiency value with four significant decimals.
pub fn eff(value: f64) -> String {
    format!("{value:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["Method".into(), "Acc".into()]);
        t.add_row(vec!["FedAvg".into(), "75.18".into()]).unwrap();
        t.add_row(vec!["FedFT-EDS".into(), "83.82".into()]).unwrap();
        t
    }

    #[test]
    fn add_row_validates_width() {
        let mut t = Table::new(vec!["a".into()]);
        assert!(t.add_row(vec!["1".into(), "2".into()]).is_err());
        assert!(t.add_row(vec!["1".into()]).is_ok());
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.headers(), &["a".to_string()]);
        assert_eq!(t.rows().len(), 1);
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.starts_with("| Method | Acc |"));
        assert!(md.contains("| FedFT-EDS | 83.82 |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    fn csv_rendering_and_escaping() {
        let mut t = Table::new(vec!["name".into(), "note".into()]);
        t.add_row(vec!["a,b".into(), "say \"hi\"".into()]).unwrap();
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        assert!(sample().to_csv().starts_with("Method,Acc\n"));
    }

    #[test]
    fn plain_text_alignment() {
        let text = sample().to_plain_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("Method"));
        assert!(lines[1].starts_with('-'));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.8382), "83.82");
        assert_eq!(eff(0.12345), "0.1235");
    }
}
