//! # fedft-analysis
//!
//! Analysis utilities for the FedFT-EDS reproduction:
//!
//! * [`cka`] — linear Centered Kernel Alignment between client-updated
//!   models, reproducing the model-shift analysis of Figures 2–4.
//! * [`curves`] — learning-curve and learning-efficiency summaries over
//!   [`fedft_core::RunResult`]s (Figures 5–9).
//! * [`report`] — plain-text / Markdown / CSV table builders used by the
//!   experiment harness to print the paper's tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cka;
pub mod curves;
pub mod report;

pub use cka::{linear_cka, pairwise_cka_matrix};
pub use report::Table;
