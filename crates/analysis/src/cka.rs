//! Linear Centered Kernel Alignment (CKA) between model representations.
//!
//! The paper uses CKA (Kornblith et al., 2019) to quantify how far
//! client-updated models drift apart under heterogeneous data: for every pair
//! of clients it compares the activations their models produce on the shared
//! test set, at three depths (low / mid / up layer groups). Pretrained models
//! drift less, which shows up as higher pairwise CKA.

use fedft_core::FlError;
use fedft_nn::{BlockId, BlockNet};
use fedft_tensor::Matrix;

/// Computes the linear CKA similarity between two activation matrices with
/// one sample per row.
///
/// `CKA(X, Y) = ‖Yᵀ X‖²_F / (‖Xᵀ X‖_F · ‖Yᵀ Y‖_F)` on column-centred
/// activations. The value lies in `[0, 1]`; `1.0` means the representations
/// are identical up to an orthogonal transform and isotropic scaling.
///
/// # Errors
///
/// Returns an error if the two matrices have different numbers of rows, or
/// fewer than two rows (CKA needs at least two samples to centre).
pub fn linear_cka(x: &Matrix, y: &Matrix) -> Result<f64, FlError> {
    if x.rows() != y.rows() {
        return Err(FlError::InvalidConfig {
            what: format!(
                "CKA requires the same number of samples, got {} and {}",
                x.rows(),
                y.rows()
            ),
        });
    }
    if x.rows() < 2 {
        return Err(FlError::InvalidConfig {
            what: "CKA requires at least two samples".into(),
        });
    }
    let xc = x.center_columns().map_err(FlError::from)?;
    let yc = y.center_columns().map_err(FlError::from)?;
    // Cross and self Gram matrices in feature space (d_x × d_y etc.).
    let xty = xc.matmul_tn(&yc).map_err(FlError::from)?;
    let xtx = xc.matmul_tn(&xc).map_err(FlError::from)?;
    let yty = yc.matmul_tn(&yc).map_err(FlError::from)?;
    let numerator = f64::from(xty.norm_sq());
    let denominator = f64::from(xtx.norm()) * f64::from(yty.norm());
    if denominator <= f64::EPSILON {
        // One of the representations is constant; define similarity as zero.
        return Ok(0.0);
    }
    Ok((numerator / denominator).clamp(0.0, 1.0))
}

/// Computes the full pairwise CKA matrix between the representations listed
/// in `activations` (one activation matrix per model, all computed on the
/// same inputs).
///
/// # Errors
///
/// Returns an error if any pair is incompatible (see [`linear_cka`]).
pub fn pairwise_cka_matrix(activations: &[Matrix]) -> Result<Vec<Vec<f64>>, FlError> {
    let n = activations.len();
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in i..n {
            let value = if i == j {
                1.0
            } else {
                linear_cka(&activations[i], &activations[j])?
            };
            out[i][j] = value;
            out[j][i] = value;
        }
    }
    Ok(out)
}

/// Mean of the off-diagonal entries of a pairwise similarity matrix — the
/// summary statistic plotted in Figure 4.
pub fn mean_offdiagonal(matrix: &[Vec<f64>]) -> f64 {
    let n = matrix.len();
    if n < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for (i, row) in matrix.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if i != j {
                total += v;
                count += 1;
            }
        }
    }
    total / count as f64
}

/// Extracts the activation of `block` that `model` produces on `inputs`.
///
/// # Errors
///
/// Returns an error when the inputs are incompatible with the model.
pub fn block_activation(
    model: &mut BlockNet,
    inputs: &Matrix,
    block: BlockId,
) -> Result<Matrix, FlError> {
    let activations = model.forward_collect(inputs).map_err(FlError::from)?;
    activations
        .into_iter()
        .find(|(id, _)| *id == block)
        .map(|(_, activation)| activation)
        .ok_or_else(|| FlError::InvalidConfig {
            what: format!("model produced no activation for block {block}"),
        })
}

/// Computes the pairwise CKA matrix across `models` at the given block depth,
/// evaluating every model on the same `inputs` (typically the global test
/// set), as in Figures 2 and 3.
///
/// # Errors
///
/// Returns an error when the inputs are incompatible with any model.
pub fn client_cka_matrix(
    models: &mut [BlockNet],
    inputs: &Matrix,
    block: BlockId,
) -> Result<Vec<Vec<f64>>, FlError> {
    let mut activations = Vec::with_capacity(models.len());
    for model in models.iter_mut() {
        activations.push(block_activation(model, inputs, block)?);
    }
    pairwise_cka_matrix(&activations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedft_nn::BlockNetConfig;
    use fedft_tensor::{init, rng};

    fn random_activations(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut r = rng::rng_for(seed, "cka-test");
        init::normal(&mut r, rows, cols, 0.0, 1.0)
    }

    #[test]
    fn cka_of_identical_representations_is_one() {
        let x = random_activations(20, 6, 1);
        let value = linear_cka(&x, &x).unwrap();
        assert!((value - 1.0).abs() < 1e-5, "got {value}");
    }

    #[test]
    fn cka_is_invariant_to_isotropic_scaling() {
        let x = random_activations(20, 6, 2);
        let y = x.scale(3.5);
        assert!((linear_cka(&x, &y).unwrap() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cka_is_symmetric_and_bounded() {
        let x = random_activations(30, 8, 3);
        let y = random_activations(30, 5, 4);
        let a = linear_cka(&x, &y).unwrap();
        let b = linear_cka(&y, &x).unwrap();
        assert!((a - b).abs() < 1e-5);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn independent_representations_have_low_cka() {
        let x = random_activations(200, 10, 5);
        let y = random_activations(200, 10, 6);
        let value = linear_cka(&x, &y).unwrap();
        assert!(
            value < 0.4,
            "independent random features should have low CKA, got {value}"
        );
    }

    #[test]
    fn constant_representation_yields_zero() {
        let x = random_activations(10, 4, 7);
        let y = Matrix::full(10, 4, 2.0);
        assert_eq!(linear_cka(&x, &y).unwrap(), 0.0);
    }

    #[test]
    fn errors_on_incompatible_inputs() {
        let x = random_activations(10, 4, 8);
        let y = random_activations(12, 4, 9);
        assert!(linear_cka(&x, &y).is_err());
        assert!(linear_cka(&Matrix::zeros(1, 4), &Matrix::zeros(1, 4)).is_err());
    }

    #[test]
    fn pairwise_matrix_is_symmetric_with_unit_diagonal() {
        let acts = vec![
            random_activations(15, 4, 1),
            random_activations(15, 6, 2),
            random_activations(15, 5, 3),
        ];
        let m = pairwise_cka_matrix(&acts).unwrap();
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, &v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-12);
            }
        }
        let mean = mean_offdiagonal(&m);
        assert!((0.0..=1.0).contains(&mean));
        assert_eq!(mean_offdiagonal(&[vec![1.0]]), 1.0);
    }

    #[test]
    fn client_cka_matrix_over_models() {
        let cfg = BlockNetConfig::new(6, 3).with_hidden(8, 8, 8);
        let mut models = vec![
            BlockNet::new(&cfg, 1),
            BlockNet::new(&cfg, 2),
            BlockNet::new(&cfg, 1),
        ];
        let inputs = random_activations(25, 6, 10);
        let m = client_cka_matrix(&mut models, &inputs, BlockId::Up).unwrap();
        // Models 0 and 2 are identical (same seed), so their CKA is 1.
        assert!((m[0][2] - 1.0).abs() < 1e-4);
        // A different model should not be perfectly aligned.
        assert!(m[0][1] < 0.999_9);
    }

    #[test]
    fn block_activation_returns_requested_depth() {
        let cfg = BlockNetConfig::new(6, 3).with_hidden(8, 12, 16);
        let mut model = BlockNet::new(&cfg, 1);
        let inputs = random_activations(5, 6, 11);
        assert_eq!(
            block_activation(&mut model, &inputs, BlockId::Low)
                .unwrap()
                .cols(),
            8
        );
        assert_eq!(
            block_activation(&mut model, &inputs, BlockId::Mid)
                .unwrap()
                .cols(),
            12
        );
        assert_eq!(
            block_activation(&mut model, &inputs, BlockId::Up)
                .unwrap()
                .cols(),
            16
        );
        assert_eq!(
            block_activation(&mut model, &inputs, BlockId::Classifier)
                .unwrap()
                .cols(),
            3
        );
    }
}
