//! # fedft
//!
//! Facade crate for the FedFT-EDS reproduction workspace. It re-exports the
//! individual crates under short module names so that examples, integration
//! tests and downstream users can depend on a single crate:
//!
//! * [`tensor`] — dense `f32` matrices, initialisers and statistics
//!   (`fedft-tensor`).
//! * [`nn`] — layers, the block-structured model, SGD and the centralised
//!   trainer (`fedft-nn`).
//! * [`data`] — synthetic domains and non-IID partitioning (`fedft-data`).
//! * [`core`] — the federated-learning engine, FedFT-EDS and every baseline
//!   (`fedft-core`).
//! * [`analysis`] — CKA, learning curves and table formatting
//!   (`fedft-analysis`).
//!
//! ## Quickstart
//!
//! ```no_run
//! use fedft::core::{FlConfig, Method, Simulation};
//! use fedft::core::pretrain::pretrain_global_model;
//! use fedft::data::{domains, federated::PartitionScheme, FederatedDataset};
//! use fedft::nn::BlockNetConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let source = domains::source_imagenet32().with_samples_per_class(50).generate(1)?;
//! let target = domains::cifar10_like().with_samples_per_class(50).generate(2)?;
//! let model_cfg = BlockNetConfig::new(target.train.feature_dim(), target.train.num_classes());
//! let global = pretrain_global_model(&model_cfg, &source, 5, 0)?;
//! let fed = FederatedDataset::partition(
//!     &target.train,
//!     target.test.clone(),
//!     10,
//!     PartitionScheme::Dirichlet { alpha: 0.1 },
//!     0,
//! )?;
//! let config = Method::FedFtEds { pds: 0.1 }.configure(FlConfig::default().with_rounds(20));
//! let result = Simulation::new(config)?.run(&fed, &global)?;
//! println!("best accuracy {:.1}%", result.best_accuracy() * 100.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fedft_analysis as analysis;
pub use fedft_core as core;
pub use fedft_data as data;
pub use fedft_nn as nn;
pub use fedft_tensor as tensor;
