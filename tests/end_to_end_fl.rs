//! Cross-crate integration tests: run miniature federated-learning
//! experiments end to end through the public facade API and assert the
//! structural and qualitative properties the paper relies on.

use fedft::core::pretrain::pretrain_global_model;
use fedft::core::{FlConfig, LocalAlgorithm, Method, SelectionStrategy, Simulation};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, DomainBundle, FederatedDataset};
use fedft::nn::{BlockNet, BlockNetConfig, FreezeLevel};

fn source() -> DomainBundle {
    domains::source_imagenet32()
        .with_samples_per_class(40)
        .with_test_samples_per_class(5)
        .generate(1)
        .expect("source generation")
}

fn target() -> DomainBundle {
    domains::cifar10_like()
        .with_samples_per_class(16)
        .with_test_samples_per_class(8)
        .generate(2)
        .expect("target generation")
}

fn setup(alpha: f64, clients: usize) -> (FederatedDataset, BlockNet, BlockNet) {
    let source = source();
    let target = target();
    let model_cfg = BlockNetConfig::new(target.train.feature_dim(), target.train.num_classes())
        .with_hidden(32, 32, 32);
    let pretrained =
        pretrain_global_model(&model_cfg, &source, 10, 5).expect("pretraining succeeds");
    let scratch = BlockNet::new(&model_cfg, 5);
    let fed = FederatedDataset::partition(
        &target.train,
        target.test.clone(),
        clients,
        PartitionScheme::Dirichlet { alpha },
        7,
    )
    .expect("partitioning succeeds");
    (fed, pretrained, scratch)
}

fn quick_config(rounds: usize) -> FlConfig {
    FlConfig::default()
        .with_rounds(rounds)
        .with_local_epochs(2)
        .with_batch_size(16)
        .with_seed(3)
}

#[test]
fn fedft_eds_improves_the_global_model_over_rounds() {
    let (fed, pretrained, _) = setup(0.5, 5);
    let config = Method::FedFtEds { pds: 0.5 }.configure(quick_config(8));
    let result = Simulation::new(config)
        .unwrap()
        .run(&fed, &pretrained)
        .unwrap();
    let mut initial = pretrained.clone();
    let initial_acc = initial
        .evaluate_accuracy(fed.test().features(), fed.test().labels())
        .unwrap();
    assert!(
        result.best_accuracy() > initial_acc + 0.05,
        "federated fine-tuning should improve noticeably over the freshly-headed model: {} vs {}",
        result.best_accuracy(),
        initial_acc
    );
    assert_eq!(result.rounds.len(), 8);
}

#[test]
fn entropy_selection_is_no_worse_than_random_selection_on_average() {
    // The paper's core claim (EDS >= RDS) averaged over a few seeds to avoid
    // flakiness at miniature scale.
    let (fed, pretrained, _) = setup(0.1, 5);
    let mut eds_total = 0.0_f32;
    let mut rds_total = 0.0_f32;
    for seed in 0..3 {
        let base = quick_config(6).with_seed(seed);
        let eds = Simulation::new(Method::FedFtEds { pds: 0.3 }.configure(base.clone()))
            .unwrap()
            .run(&fed, &pretrained)
            .unwrap();
        let rds = Simulation::new(Method::FedFtRds { pds: 0.3 }.configure(base))
            .unwrap()
            .run(&fed, &pretrained)
            .unwrap();
        eds_total += eds.best_accuracy();
        rds_total += rds.best_accuracy();
    }
    // At this miniature scale (5 clients, ~30 samples each) the comparison is
    // noisy; the full-scale orderings are recorded in EXPERIMENTS.md. Here we
    // only require entropy selection to stay in the same ballpark as random
    // selection (within 5 accuracy points on average over the seeds).
    assert!(
        eds_total >= rds_total - 0.15,
        "entropy selection fell far behind random selection: {eds_total} vs {rds_total}"
    );
}

#[test]
fn partial_finetuning_reduces_client_compute_time() {
    let (fed, pretrained, _) = setup(0.5, 4);
    let full = Simulation::new(Method::FedAvg.configure(quick_config(3)))
        .unwrap()
        .run(&fed, &pretrained)
        .unwrap();
    let partial = Simulation::new(Method::FedFtAll.configure(quick_config(3)))
        .unwrap()
        .run(&fed, &pretrained)
        .unwrap();
    assert!(
        partial.total_client_seconds() < full.total_client_seconds(),
        "fine-tuning only the upper part must cost less simulated client time"
    );
    // And selecting 10% of data on top of that reduces it further.
    let selected = Simulation::new(Method::FedFtEds { pds: 0.1 }.configure(quick_config(3)))
        .unwrap()
        .run(&fed, &pretrained)
        .unwrap();
    assert!(selected.total_client_seconds() < partial.total_client_seconds());
}

#[test]
fn learning_efficiency_of_fedft_eds_beats_full_model_fedavg() {
    let (fed, pretrained, _) = setup(0.5, 5);
    let fedavg = Simulation::new(Method::FedAvg.configure(quick_config(5)))
        .unwrap()
        .run(&fed, &pretrained)
        .unwrap();
    let eds = Simulation::new(Method::FedFtEds { pds: 0.1 }.configure(quick_config(5)))
        .unwrap()
        .run(&fed, &pretrained)
        .unwrap();
    assert!(
        eds.learning_efficiency() > fedavg.learning_efficiency(),
        "FedFT-EDS must gain more accuracy per simulated client second ({} vs {})",
        eds.learning_efficiency(),
        fedavg.learning_efficiency()
    );
}

#[test]
fn pretrained_initialisation_beats_training_from_scratch_under_heterogeneity() {
    let (fed, pretrained, scratch) = setup(0.1, 5);
    let config = Method::FedAvg.configure(quick_config(8));
    let with_pretraining = Simulation::new(config.clone())
        .unwrap()
        .run(&fed, &pretrained)
        .unwrap();
    let from_scratch = Simulation::new(config)
        .unwrap()
        .run(&fed, &scratch)
        .unwrap();
    assert!(
        with_pretraining.best_accuracy() >= from_scratch.best_accuracy() - 0.02,
        "pretraining should help (or at least not hurt) under strong heterogeneity: {} vs {}",
        with_pretraining.best_accuracy(),
        from_scratch.best_accuracy()
    );
}

#[test]
fn fedprox_runs_and_stays_closer_to_the_global_model() {
    let (fed, pretrained, _) = setup(0.1, 4);
    let config = quick_config(3).with_algorithm(LocalAlgorithm::FedProx { mu: 0.1 });
    let result = Simulation::new(config)
        .unwrap()
        .run(&fed, &pretrained)
        .unwrap();
    assert_eq!(result.rounds.len(), 3);
    assert!(result.best_accuracy() > 0.0);
}

#[test]
fn straggler_dropout_reduces_participants_but_training_still_progresses() {
    let (fed, pretrained, _) = setup(0.5, 10);
    let config = Method::FedAvg
        .configure(quick_config(6))
        .with_participation(0.2);
    let result = Simulation::new(config)
        .unwrap()
        .run(&fed, &pretrained)
        .unwrap();
    assert!(result.rounds.iter().all(|r| r.participants == 2));
    assert!(result.best_accuracy() > 0.2);
}

#[test]
fn freeze_levels_order_client_cost_and_communication_size() {
    let (fed, pretrained, _) = setup(0.5, 3);
    let mut previous_cost = f64::INFINITY;
    let mut previous_params = usize::MAX;
    for freeze in [
        FreezeLevel::Full,
        FreezeLevel::Large,
        FreezeLevel::Moderate,
        FreezeLevel::Classifier,
    ] {
        let config = quick_config(2)
            .with_freeze(freeze)
            .with_selection(SelectionStrategy::All);
        let result = Simulation::new(config)
            .unwrap()
            .run(&fed, &pretrained)
            .unwrap();
        let cost = result.total_client_seconds();
        let params = pretrained.trainable_parameter_count(freeze);
        assert!(
            cost < previous_cost,
            "more freezing must cost less ({freeze})"
        );
        assert!(
            params < previous_params,
            "more freezing must transport fewer parameters"
        );
        previous_cost = cost;
        previous_params = params;
    }
}

#[test]
fn simulations_are_reproducible_across_parallel_and_serial_execution() {
    use fedft::core::ExecutionBackend;
    let (fed, pretrained, _) = setup(0.5, 4);
    let run_with = |backend: ExecutionBackend| {
        Simulation::new(
            Method::FedFtEds { pds: 0.5 }
                .configure(quick_config(3))
                .with_execution(backend),
        )
        .unwrap()
        .run(&fed, &pretrained)
        .unwrap()
    };
    let sequential = run_with(ExecutionBackend::Sequential);
    let parallel = run_with(ExecutionBackend::Parallel);
    // Bit-identical histories: the executor backend is an execution detail,
    // never an algorithmic one.
    assert_eq!(sequential.rounds, parallel.rounds);
    assert_eq!(sequential.label, parallel.label);
}
