//! End-to-end tests of asynchronous bounded-staleness execution.
//!
//! The determinism contract PR 1/PR 2 established for every backend extends
//! to the async executor: `ExecutionBackend::Async { max_staleness: 0 }`
//! stalls every dispatch until the fresh global model exists and must
//! reproduce the `SequentialExecutor` round history **bit for bit** — on a
//! homogeneous pool and on a heterogeneous two-tier mix alike. Relaxing the
//! bound overlaps rounds: staleness appears (never above the bound, checked
//! property-style across bounds and seeds), the staleness-discounted
//! aggregation weights stay convex, and the simulated wall clock shrinks.

use fedft::core::{
    ClientUpdate, ExecutionBackend, FlConfig, HeterogeneityModel, Method, RunResult, Server,
    Simulation,
};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::{BlockNet, BlockNetConfig, ParamVector};
use fedft::tensor::rng;
use rand::Rng;

const CLIENTS: usize = 12;
const SEED: u64 = 4;

fn setup() -> (FederatedDataset, BlockNet) {
    let target = domains::cifar10_like()
        .with_samples_per_class(24)
        .with_test_samples_per_class(6)
        .generate(2)
        .expect("target generation");
    let fed = FederatedDataset::partition(
        &target.train,
        target.test.clone(),
        CLIENTS,
        PartitionScheme::Iid,
        7,
    )
    .expect("partitioning");
    let model_cfg = BlockNetConfig::new(target.train.feature_dim(), target.train.num_classes())
        .with_hidden(24, 24, 24);
    let model = BlockNet::new(&model_cfg, 5);
    (fed, model)
}

fn base_config() -> FlConfig {
    Method::FedFtEds { pds: 0.25 }.configure(
        FlConfig::default()
            .with_rounds(4)
            .with_local_epochs(2)
            .with_batch_size(16)
            .with_seed(SEED),
    )
}

fn run(config: FlConfig, fed: &FederatedDataset, model: &BlockNet) -> RunResult {
    Simulation::new(config)
        .expect("valid config")
        .run(fed, model)
        .expect("simulation succeeds")
}

#[test]
fn zero_staleness_is_bit_identical_to_the_sequential_executor() {
    let (fed, model) = setup();
    // Homogeneous pool and heterogeneous two-tier mix: in both cases the
    // zero bound must reproduce the sequential history bit for bit — the
    // updates, the aggregation path, the staleness records and the
    // wall-clock accounting.
    for hetero in [
        HeterogeneityModel::uniform(),
        HeterogeneityModel::two_tier(),
    ] {
        let config = base_config().with_heterogeneity(hetero);
        let sequential = run(
            config.clone().with_execution(ExecutionBackend::Sequential),
            &fed,
            &model,
        );
        let zero = run(config.with_async(0), &fed, &model);
        assert_eq!(sequential.rounds, zero.rounds);
        assert_eq!(sequential.label, zero.label);
        assert_eq!(zero.max_update_staleness(), 0);
        assert!(zero
            .rounds
            .iter()
            .all(|r| r.update_staleness.len() == r.participants));
    }
}

#[test]
fn zero_staleness_with_offline_draws_matches_the_deadline_backend() {
    let (fed, model) = setup();
    // Availability draws apply to both scheduling backends (same RNG
    // streams), so with offline probability in play Async(0) reproduces the
    // Deadline backend under an infinite deadline — *not* Sequential, which
    // trains everyone. This pins the qualifier on the bit-identity claim.
    let flaky =
        HeterogeneityModel::from_tiers(vec![
            fedft::core::DeviceTier::new("flaky", 1.0, 1.0).with_drop_probability(0.3)
        ]);
    let config = base_config().with_rounds(6).with_heterogeneity(flaky);
    let deadline = run(
        config.clone().with_execution(ExecutionBackend::Deadline),
        &fed,
        &model,
    );
    let zero = run(config.clone().with_async(0), &fed, &model);
    assert_eq!(deadline.rounds, zero.rounds);
    assert!(
        zero.total_dropped_clients() > 0,
        "a 30% offline probability over 6 rounds must produce drops"
    );
    let sequential = run(config.serial(), &fed, &model);
    assert_ne!(
        sequential.rounds, zero.rounds,
        "sequential ignores availability, so histories must diverge"
    );
}

#[test]
fn aggregated_staleness_never_exceeds_the_bound() {
    let (fed, model) = setup();
    // Property-style sweep over bounds, seeds and participation fractions:
    // every recorded update's staleness must respect the configured bound.
    for max_staleness in [0usize, 1, 2, 3] {
        for seed in [1u64, 4, 9] {
            let config = base_config()
                .with_seed(seed)
                .with_participation(0.5)
                .with_heterogeneity(HeterogeneityModel::two_tier())
                .with_async(max_staleness);
            let result = run(config, &fed, &model);
            for record in &result.rounds {
                assert_eq!(record.update_staleness.len(), record.participants);
                for &s in &record.update_staleness {
                    assert!(
                        s <= max_staleness,
                        "round {}: staleness {s} exceeds bound {max_staleness} (seed {seed})",
                        record.round
                    );
                }
            }
            assert!(result.max_update_staleness() <= max_staleness);
        }
    }
}

#[test]
fn staleness_weights_are_convex_for_every_sampled_round() {
    // Property-style: random rounds of updates (selected-sample counts,
    // including the all-zero degenerate case) with random staleness vectors
    // must always yield convex aggregation weights — non-negative, at most
    // one, summing to one — and an aggregate inside the convex hull.
    let server = Server::new();
    let mut r = rng::rng_for(3, "async-staleness-weights");
    for case in 0..200 {
        let n = 1 + (r.gen::<u64>() % 8) as usize;
        let degenerate = case % 17 == 0;
        let mut updates = Vec::with_capacity(n);
        let mut staleness = Vec::with_capacity(n);
        for id in 0..n {
            let selected = if degenerate {
                0
            } else {
                (r.gen::<u64>() % 50) as usize
            };
            let value = r.gen::<f64>() as f32 * 10.0 - 5.0;
            updates.push(ClientUpdate {
                client_id: id,
                theta: ParamVector::from_values(vec![value]),
                selected_samples: selected,
                local_samples: selected.max(1) * 2,
                train_loss: 0.5,
                compute_seconds: 1.0,
                cached_compute_seconds: 0.5,
            });
            staleness.push((r.gen::<u64>() % 6) as usize);
        }
        let weights = server.staleness_weights(&updates, &staleness);
        assert_eq!(weights.len(), n);
        let sum: f32 = weights.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-5,
            "case {case}: weights sum to {sum}, not 1"
        );
        assert!(weights.iter().all(|&w| (0.0..=1.0 + 1e-6).contains(&w)));

        let theta = server.aggregate_stale(&updates, &staleness, 0).unwrap();
        let lo = updates
            .iter()
            .map(|u| u.theta.values()[0])
            .fold(f32::INFINITY, f32::min);
        let hi = updates
            .iter()
            .map(|u| u.theta.values()[0])
            .fold(f32::NEG_INFINITY, f32::max);
        let v = theta.values()[0];
        assert!(
            (lo - 1e-4..=hi + 1e-4).contains(&v),
            "case {case}: aggregate {v} left the convex hull [{lo}, {hi}]"
        );
    }
}

#[test]
fn overlap_shrinks_the_simulated_wall_clock() {
    let (fed, model) = setup();
    // A *rare* slow tier plus partial participation: the straggler is not
    // sampled every round, so under overlap it can train through rounds it
    // does not participate in — with an abundant slow tier the bottleneck
    // device is resampled back-to-back and its own busy chain pins the
    // timeline on every backend.
    let mix = HeterogeneityModel::from_tiers(vec![
        fedft::core::DeviceTier::new("fast", 0.85, 1.0),
        fedft::core::DeviceTier::new("slow", 0.15, 0.25).with_network(0.5, 0.5),
    ]);
    let config = base_config()
        .with_rounds(6)
        .with_participation(0.5)
        .with_heterogeneity(mix);
    let sync = run(config.clone().serial(), &fed, &model);
    let relaxed = run(config.with_async(2), &fed, &model);
    assert!(
        relaxed.stale_update_count() > 0,
        "the relaxed bound must actually produce stale updates"
    );
    assert!(
        relaxed.total_wall_seconds() < sync.total_wall_seconds(),
        "overlap must shrink the simulated wall clock ({} vs {})",
        relaxed.total_wall_seconds(),
        sync.total_wall_seconds()
    );
    // Client compute is unchanged — only the timeline compresses.
    assert_eq!(sync.total_client_seconds(), relaxed.total_client_seconds());
}

#[test]
fn async_with_finite_deadline_is_rejected_at_construction() {
    let config = base_config().with_async(2).with_deadline(5.0);
    assert!(Simulation::new(config).is_err());
}
