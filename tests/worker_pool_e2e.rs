//! End-to-end contract of the persistent worker pool: the worker-thread cap
//! is pure scheduling plumbing, so it must never change results. Chunk
//! boundaries are deterministic in the requested worker count and every
//! parallel hot path (round executor, GEMM row panels, pooled aggregation)
//! returns results in chunk order, so the learning history is bit-identical
//! across worker counts — including `1`, where the parallel executor
//! degrades to the sequential one — under all five execution backends.

use fedft::core::{
    ExecutionBackend, FlConfig, RunResult, SelectionStrategy, Simulation, StreamingParams,
};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::{BlockNet, BlockNetConfig};

const SHARDS: usize = 6;

fn setup() -> (FederatedDataset, BlockNet) {
    let bundle = domains::cifar10_like()
        .with_samples_per_class(12)
        .with_test_samples_per_class(4)
        .generate(5)
        .unwrap();
    let fed = FederatedDataset::partition(
        &bundle.train,
        bundle.test.clone(),
        SHARDS,
        PartitionScheme::Dirichlet { alpha: 0.5 },
        7,
    )
    .unwrap();
    let model_cfg = BlockNetConfig::new(bundle.train.feature_dim(), 10).with_hidden(16, 16, 16);
    (fed, BlockNet::new(&model_cfg, 3))
}

fn pool_config() -> FlConfig {
    FlConfig::default()
        .with_rounds(3)
        .with_local_epochs(1)
        .with_batch_size(16)
        .with_participation(1.0)
        .with_selection(SelectionStrategy::Entropy {
            fraction: 0.5,
            temperature: 0.1,
        })
}

fn run(label: &str, config: FlConfig, fed: &FederatedDataset, model: &BlockNet) -> RunResult {
    Simulation::new(config)
        .unwrap()
        .run_labelled(label, fed, model)
        .unwrap()
}

#[test]
fn worker_cap_never_changes_the_history_across_all_five_backends() {
    // The five backends schedule client updates very differently (straight
    // chunks, simulated deadlines, bounded staleness, buffered flushes) —
    // under every one of them the pooled run must be byte-identical to the
    // sequential reference at every worker cap.
    let (fed, model) = setup();
    let sequential = run(
        "sequential",
        pool_config().with_execution(ExecutionBackend::Sequential),
        &fed,
        &model,
    );
    let backends: [(&str, ExecutionBackend); 5] = [
        ("sequential", ExecutionBackend::Sequential),
        ("parallel", ExecutionBackend::Parallel),
        ("deadline", ExecutionBackend::Deadline),
        ("async", ExecutionBackend::Async { max_staleness: 0 }),
        (
            "streaming",
            ExecutionBackend::Streaming(StreamingParams::new(SHARDS)),
        ),
    ];
    for (name, backend) in backends {
        let base = pool_config().with_execution(backend);
        // `None` sizes the dispatch from the hardware thread count; explicit
        // caps pin it. All must match the backend's own auto run AND each
        // other — the cap is scheduling noise by construction.
        let auto = run(name, base.clone(), &fed, &model);
        for workers in [1_usize, 2, 8] {
            let capped = run(
                name,
                base.clone().with_worker_threads(workers),
                &fed,
                &model,
            );
            assert_eq!(
                auto.learning_history(),
                capped.learning_history(),
                "{name} history diverged at a cap of {workers} workers"
            );
        }
        // These four backends train every client of every round (staleness 0
        // and a cohort-sized buffer reduce async/streaming to synchronous
        // rounds; the uniform heterogeneity default never drops a deadline
        // client), so each must also reproduce the sequential history.
        assert_eq!(
            sequential.learning_history(),
            auto.learning_history(),
            "{name} diverged from the sequential reference"
        );
    }
}

#[test]
fn oversized_caps_and_tiny_cohorts_stay_identical() {
    // More workers than participants: the executor clamps to the cohort
    // size, the pool to its chunk count — nothing in between may change
    // results or hang.
    let (fed, model) = setup();
    let reference = run("reference", pool_config().serial(), &fed, &model);
    let oversized = run(
        "oversized",
        pool_config()
            .with_execution(ExecutionBackend::Parallel)
            .with_worker_threads(64),
        &fed,
        &model,
    );
    assert_eq!(reference.learning_history(), oversized.learning_history());
}
