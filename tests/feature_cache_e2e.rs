//! End-to-end contract of the frozen-feature cache: with
//! `FlConfig::feature_cache` enabled, every `run_labelled` history is
//! **bit-identical** to the cache-off run — across execution backends,
//! freeze levels and selection strategies. The cache only changes *how* the
//! frozen prefix's activations are obtained (memoised once vs recomputed per
//! batch); the kernels, inputs and arithmetic are the same, so the histories
//! must match exactly, including every f32/f64 bit.

use fedft::core::{
    ExecutionBackend, FlConfig, HeterogeneityModel, Method, SelectionStrategy, Simulation,
};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::{BlockNet, BlockNetConfig, FreezeLevel};

fn setup(num_clients: usize) -> (FederatedDataset, BlockNet) {
    let bundle = domains::cifar10_like()
        .with_samples_per_class(12)
        .with_test_samples_per_class(4)
        .generate(5)
        .unwrap();
    let fed = FederatedDataset::partition(
        &bundle.train,
        bundle.test.clone(),
        num_clients,
        PartitionScheme::Dirichlet { alpha: 0.5 },
        7,
    )
    .unwrap();
    let model_cfg = BlockNetConfig::new(bundle.train.feature_dim(), 10).with_hidden(16, 16, 16);
    (fed, BlockNet::new(&model_cfg, 3))
}

fn quick(rounds: usize) -> FlConfig {
    FlConfig::default()
        .with_rounds(rounds)
        .with_local_epochs(1)
        .with_batch_size(16)
        .serial()
}

/// Runs `config` twice — cache off and cache on — and asserts bit-identical
/// learning histories (RoundRecord derives PartialEq over every field,
/// including the f32/f64 metrics, so `==` is an exact-bits comparison for
/// finite values; the cache hit/miss/eviction/peak counters are excluded by
/// `learning_history()` since they *describe* the cache and legitimately
/// differ between off and on).
fn assert_cache_transparent(
    label: &str,
    config: FlConfig,
    fed: &FederatedDataset,
    model: &BlockNet,
) {
    let off = Simulation::new(config.clone().with_feature_cache(false))
        .unwrap()
        .run_labelled(label, fed, model)
        .unwrap();
    let on = Simulation::new(config.with_feature_cache(true))
        .unwrap()
        .run_labelled(label, fed, model)
        .unwrap();
    assert_eq!(
        off.learning_history(),
        on.learning_history(),
        "{label}: cache-on history diverged from cache-off"
    );
    // A cache-off run must never report cache activity.
    assert_eq!(off.total_cache_hits() + off.total_cache_misses(), 0);
    assert_eq!(off.peak_cache_bytes(), 0);
}

#[test]
fn cache_is_transparent_across_freeze_levels() {
    let (fed, model) = setup(4);
    for freeze in FreezeLevel::all() {
        let config = quick(3)
            .with_freeze(freeze)
            .with_selection(SelectionStrategy::Entropy {
                fraction: 0.5,
                temperature: 0.1,
            });
        assert_cache_transparent(&format!("freeze-{freeze}"), config, &fed, &model);
    }
}

#[test]
fn cache_is_transparent_across_selection_strategies() {
    let (fed, model) = setup(4);
    for (name, selection) in [
        ("all", SelectionStrategy::All),
        ("rds", SelectionStrategy::Random { fraction: 0.4 }),
        (
            "eds",
            SelectionStrategy::Entropy {
                fraction: 0.4,
                temperature: 0.1,
            },
        ),
    ] {
        let config = quick(3).with_selection(selection);
        assert_cache_transparent(name, config, &fed, &model);
    }
}

#[test]
fn cache_is_transparent_across_execution_backends() {
    let (fed, model) = setup(6);
    let eds = SelectionStrategy::Entropy {
        fraction: 0.5,
        temperature: 0.1,
    };
    // Sequential and Parallel: plain scheduling, full participation.
    for backend in [ExecutionBackend::Sequential, ExecutionBackend::Parallel] {
        let config = quick(3).with_selection(eds).with_execution(backend);
        assert_cache_transparent(backend.short_name(), config, &fed, &model);
    }
    // Deadline: heterogeneous tiers with a finite deadline, so drops occur.
    let hetero = HeterogeneityModel::two_tier();
    let deadline_config = quick(3)
        .with_selection(eds)
        .with_heterogeneity(hetero.clone())
        .with_seed(3)
        .with_execution(ExecutionBackend::Deadline)
        .with_deadline(
            hetero
                .predicted_times(&fed, &model, &quick(1).with_selection(eds).with_seed(3))
                .iter()
                .copied()
                .fold(0.0_f64, f64::max)
                * 0.75,
        );
    assert_cache_transparent("deadline", deadline_config, &fed, &model);
    // Async: overlapping rounds with genuinely stale model versions.
    let async_config = quick(4)
        .with_selection(eds)
        .with_heterogeneity(HeterogeneityModel::two_tier())
        .with_seed(3)
        .with_participation(0.5)
        .with_async(2);
    assert_cache_transparent("async", async_config, &fed, &model);
}

#[test]
fn cache_is_transparent_for_the_paper_method_lineup() {
    // The paper's own method configurations (FedFT-EDS plus the baselines
    // it compares against) drive every knob combination at once.
    let (fed, model) = setup(4);
    for method in [
        Method::FedAvg,
        Method::FedProx { mu: 0.01 },
        Method::FedFtAll,
        Method::FedFtRds { pds: 0.5 },
        Method::FedFtEds { pds: 0.5 },
    ] {
        let config = method.configure(quick(2));
        assert_cache_transparent(&format!("{method:?}"), config, &fed, &model);
    }
}

#[test]
fn cached_accounting_rides_along_and_is_never_more_expensive() {
    let (fed, model) = setup(4);
    let config = quick(3).with_selection(SelectionStrategy::Entropy {
        fraction: 0.5,
        temperature: 0.1,
    });
    let run = Simulation::new(config)
        .unwrap()
        .run_labelled("accounting", &fed, &model)
        .unwrap();
    // Default freeze (Moderate) has a frozen prefix: cached strictly cheaper.
    assert!(run.total_client_seconds_cached() > 0.0);
    assert!(run.total_client_seconds_cached() < run.total_client_seconds());
    assert!(run.cached_learning_efficiency() > run.learning_efficiency());
    for record in &run.rounds {
        assert!(record.round_client_seconds_cached <= record.round_client_seconds);
    }
    // Full-model training has no frozen prefix: the accountings coincide.
    let full = Simulation::new(quick(2).with_freeze(FreezeLevel::Full))
        .unwrap()
        .run_labelled("full", &fed, &model)
        .unwrap();
    assert_eq!(
        full.total_client_seconds_cached().to_bits(),
        full.total_client_seconds().to_bits()
    );
}
