//! End-to-end contract of the streaming serving mode.
//!
//! The discipline that keeps FedBuff-style buffered aggregation honest is
//! the same one `Async(0) ≡ Sequential` established: the **degenerate**
//! streaming configuration — buffer as deep as the cohort, steady arrivals,
//! staleness bound 0 — must reproduce the `SequentialExecutor` learning
//! history **bit for bit**. Relaxing the knobs buys throughput at the cost
//! of carryover: shallow buffers flush the fastest devices and carry
//! stragglers into later flush intervals (their staleness at aggregation
//! exceeding the dispatch bound, as recorded), flush timers close rounds on
//! schedule, and the whole mode composes with logical client pools under a
//! fixed cache byte budget.

use fedft::core::{
    ArrivalModel, ExecutionBackend, FlConfig, FlushTrigger, HeterogeneityModel, Method, RunResult,
    Simulation, StreamingParams,
};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::{BlockNet, BlockNetConfig};

const CLIENTS: usize = 12;
const SEED: u64 = 4;

fn setup() -> (FederatedDataset, BlockNet) {
    let target = domains::cifar10_like()
        .with_samples_per_class(24)
        .with_test_samples_per_class(6)
        .generate(2)
        .expect("target generation");
    let fed = FederatedDataset::partition(
        &target.train,
        target.test.clone(),
        CLIENTS,
        PartitionScheme::Iid,
        7,
    )
    .expect("partitioning");
    let model_cfg = BlockNetConfig::new(target.train.feature_dim(), target.train.num_classes())
        .with_hidden(24, 24, 24);
    let model = BlockNet::new(&model_cfg, 5);
    (fed, model)
}

fn base_config() -> FlConfig {
    Method::FedFtEds { pds: 0.25 }.configure(
        FlConfig::default()
            .with_rounds(4)
            .with_local_epochs(2)
            .with_batch_size(16)
            .with_seed(SEED),
    )
}

fn run(config: FlConfig, fed: &FederatedDataset, model: &BlockNet) -> RunResult {
    Simulation::new(config)
        .expect("valid config")
        .run(fed, model)
        .expect("simulation succeeds")
}

#[test]
fn degenerate_streaming_is_bit_identical_to_the_sequential_executor() {
    let (fed, model) = setup();
    // Full participation: the cohort is the whole pool, so K = CLIENTS,
    // steady arrivals and staleness bound 0 make every round one full
    // synchronous flush. Homogeneous and two-tier populations alike.
    for hetero in [
        HeterogeneityModel::uniform(),
        HeterogeneityModel::two_tier(),
    ] {
        let config = base_config().with_heterogeneity(hetero);
        let sequential = run(
            config.clone().with_execution(ExecutionBackend::Sequential),
            &fed,
            &model,
        );
        let streaming = run(
            config.with_streaming(StreamingParams::new(CLIENTS)),
            &fed,
            &model,
        );
        // The learning history (which clears backend bookkeeping) is
        // bit-identical…
        assert_eq!(sequential.learning_history(), streaming.learning_history());
        assert_eq!(streaming.max_update_staleness(), 0);
        // …and the flush records say why: every round filled the buffer
        // exactly, carried nothing and left nothing behind.
        assert_eq!(streaming.flush_count(), streaming.rounds.len());
        assert_eq!(
            streaming.flush_count_for(FlushTrigger::BufferFull),
            streaming.rounds.len()
        );
        assert_eq!(streaming.total_carried_updates(), 0);
        for record in &streaming.rounds {
            let flush = record.flush.as_ref().expect("streaming records flushes");
            assert_eq!(flush.buffer_fill, CLIENTS);
            assert_eq!(flush.arrivals, CLIENTS);
            assert_eq!(flush.remaining, 0);
        }
        // Sequential rounds record no flush bookkeeping at all.
        assert!(sequential.rounds.iter().all(|r| r.flush.is_none()));
    }
}

#[test]
fn degenerate_streaming_with_offline_draws_matches_the_deadline_backend() {
    let (fed, model) = setup();
    // Availability draws share one RNG stream across every scheduling
    // backend, so with offline probability in play the degenerate streaming
    // run reproduces the Deadline backend under an infinite deadline (the
    // buffer can no longer fill, so rounds drain instead) — not Sequential,
    // which trains everyone.
    let flaky =
        HeterogeneityModel::from_tiers(vec![
            fedft::core::DeviceTier::new("flaky", 1.0, 1.0).with_drop_probability(0.3)
        ]);
    let config = base_config().with_rounds(6).with_heterogeneity(flaky);
    let deadline = run(
        config.clone().with_execution(ExecutionBackend::Deadline),
        &fed,
        &model,
    );
    let streaming = run(
        config.clone().with_streaming(StreamingParams::new(CLIENTS)),
        &fed,
        &model,
    );
    assert_eq!(deadline.learning_history(), streaming.learning_history());
    assert!(
        streaming.total_dropped_clients() > 0,
        "a 30% offline probability over 6 rounds must produce drops"
    );
    assert!(
        streaming.flush_count_for(FlushTrigger::Drain) > 0,
        "rounds with offline drops cannot fill the buffer and must drain"
    );
    let sequential = run(config.serial(), &fed, &model);
    assert_ne!(sequential.learning_history(), streaming.learning_history());
}

#[test]
fn shallow_buffers_carry_stragglers_into_later_flushes() {
    let (fed, model) = setup();
    // A buffer shallower than the cohort flushes the abundant fast tier
    // and carries the rare slow tier's updates into later intervals (the
    // slow devices are ~6× the fast round time, so their round-0 updates
    // surface a few flushes later).
    let mix = HeterogeneityModel::from_tiers(vec![
        fedft::core::DeviceTier::new("fast", 0.85, 1.0),
        fedft::core::DeviceTier::new("slow", 0.15, 0.25).with_network(0.5, 0.5),
    ]);
    let config = base_config()
        .with_rounds(6)
        .with_heterogeneity(mix)
        .with_streaming(StreamingParams::new(CLIENTS / 2));
    let result = run(config, &fed, &model);
    assert!(
        result.total_carried_updates() > 0,
        "a shallow buffer over a two-tier mix must carry updates"
    );
    // Carried updates age past their dispatch round: staleness beyond the
    // (zero) dispatch bound appears in the records — FedBuff semantics.
    assert!(result.max_update_staleness() >= 1);
    assert!(result.stale_update_count() > 0);
    // Every aggregated update is accounted for exactly once: arrivals in
    // minus still-buffered out.
    let arrivals: usize = result
        .rounds
        .iter()
        .filter_map(|r| r.flush.as_ref().map(|f| f.arrivals))
        .sum();
    let left_behind = result
        .rounds
        .last()
        .and_then(|r| r.flush.as_ref().map(|f| f.remaining))
        .unwrap_or(0);
    assert_eq!(result.total_aggregated_updates(), arrivals - left_behind);
}

#[test]
fn flush_timers_close_rounds_on_schedule() {
    let (fed, model) = setup();
    let unbounded = run(
        base_config()
            .with_heterogeneity(HeterogeneityModel::two_tier())
            .with_streaming(StreamingParams::new(CLIENTS)),
        &fed,
        &model,
    );
    // A flush timer below the slowest round's wall clock must fire at least
    // once, and a timed-out round's wall clock is exactly the timer.
    let slowest_round = unbounded
        .rounds
        .iter()
        .map(|r| r.round_wall_seconds)
        .fold(0.0_f64, f64::max);
    let timer = slowest_round / 2.0;
    let timed = run(
        base_config()
            .with_heterogeneity(HeterogeneityModel::two_tier())
            .with_streaming(StreamingParams::new(CLIENTS).with_flush_seconds(timer)),
        &fed,
        &model,
    );
    assert!(timed.flush_count_for(FlushTrigger::Timeout) > 0);
    for record in &timed.rounds {
        let flush = record.flush.as_ref().unwrap();
        assert!(record.round_wall_seconds <= timer + 1e-12);
        if flush.trigger == FlushTrigger::Timeout {
            assert_eq!(record.round_wall_seconds, timer);
        }
    }
}

#[test]
fn streaming_pool_respects_the_cache_byte_budget_under_churn() {
    let (fed, model) = setup();
    // Streaming over a logical pool with bursty arrivals and a shallow
    // buffer: realistic churn against the shared cache registry. The cache
    // is still transparent (bit-identical history with it off), and a
    // half-working-set budget bounds the peak while forcing evictions.
    let pool = |params: StreamingParams| {
        base_config()
            .with_rounds(5)
            .with_logical_clients(10 * CLIENTS)
            .with_participation(0.2)
            .with_heterogeneity(HeterogeneityModel::two_tier())
            .with_streaming(params)
    };
    let params = StreamingParams::new(12)
        .with_max_staleness(2)
        .with_arrival(ArrivalModel::Burst {
            mean_offset_seconds: 2.0,
        });
    let off = run(pool(params), &fed, &model);
    let unbounded = run(pool(params).with_feature_cache(true), &fed, &model);
    assert_eq!(off.learning_history(), unbounded.learning_history());
    let full_bytes = unbounded.peak_cache_bytes();
    assert!(full_bytes > 0);

    let budget = full_bytes / 2;
    let budgeted = run(
        pool(params)
            .with_feature_cache(true)
            .with_cache_budget(budget),
        &fed,
        &model,
    );
    assert_eq!(off.learning_history(), budgeted.learning_history());
    assert!(budgeted.peak_cache_bytes() <= budget);
    for record in &budgeted.rounds {
        assert!(record.cache_peak_bytes <= budget);
    }
    assert!(budgeted.total_cache_evictions() > 0);
}

#[test]
fn streaming_with_finite_deadline_is_rejected_at_construction() {
    let config = base_config()
        .with_streaming(StreamingParams::new(8))
        .with_deadline(5.0);
    assert!(Simulation::new(config).is_err());
}
