//! End-to-end contract of the logical client pool and the shared,
//! byte-budgeted cache registry: a pool of N logical clients over M ≪ N
//! physical shards must produce a learning history **bit-identical** to the
//! same pool with per-client caches and with the cache off entirely —
//! whatever the byte budget — while peak cache bytes stay (a) under the
//! budget and (b) a factor ~N/M below what per-client caching holds.

use fedft::core::{
    CacheScope, ExecutionBackend, FlConfig, Method, RunResult, SelectionStrategy, Simulation,
};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::{BlockNet, BlockNetConfig, FreezeLevel};

const SHARDS: usize = 6;
const LOGICAL: usize = 120;

fn setup() -> (FederatedDataset, BlockNet) {
    let bundle = domains::cifar10_like()
        .with_samples_per_class(12)
        .with_test_samples_per_class(4)
        .generate(5)
        .unwrap();
    let fed = FederatedDataset::partition(
        &bundle.train,
        bundle.test.clone(),
        SHARDS,
        PartitionScheme::Dirichlet { alpha: 0.5 },
        7,
    )
    .unwrap();
    let model_cfg = BlockNetConfig::new(bundle.train.feature_dim(), 10).with_hidden(16, 16, 16);
    (fed, BlockNet::new(&model_cfg, 3))
}

fn pool_config() -> FlConfig {
    FlConfig::default()
        .with_rounds(3)
        .with_local_epochs(1)
        .with_batch_size(16)
        .with_logical_clients(LOGICAL)
        .with_participation(0.1)
        .with_selection(SelectionStrategy::Entropy {
            fraction: 0.5,
            temperature: 0.1,
        })
        .serial()
}

fn run(label: &str, config: FlConfig, fed: &FederatedDataset, model: &BlockNet) -> RunResult {
    Simulation::new(config)
        .unwrap()
        .run_labelled(label, fed, model)
        .unwrap()
}

#[test]
fn shared_registry_is_bit_identical_to_per_client_and_cache_off() {
    let (fed, model) = setup();
    let off = run("off", pool_config(), &fed, &model);
    let per_client = run(
        "per-client",
        pool_config()
            .with_feature_cache(true)
            .with_cache_scope(CacheScope::PerClient),
        &fed,
        &model,
    );
    let shared = run(
        "shared",
        pool_config().with_feature_cache(true),
        &fed,
        &model,
    );
    assert_eq!(off.learning_history(), per_client.learning_history());
    assert_eq!(off.learning_history(), shared.learning_history());

    // Dedup: the shared registry builds at most one entry per distinct
    // shard, while per-client caches build one per participating client.
    assert!(shared.total_cache_misses() <= SHARDS);
    assert!(per_client.total_cache_misses() > shared.total_cache_misses());
    assert!(shared.total_cache_hits() > 0);
    // Memory scales with shards, not with logical clients.
    assert!(shared.peak_cache_bytes() < per_client.peak_cache_bytes());
    // A cache-off run reports no cache activity at all.
    assert_eq!(off.total_cache_hits() + off.total_cache_misses(), 0);
    assert_eq!(off.peak_cache_bytes(), 0);
}

#[test]
fn byte_budget_bounds_peak_and_preserves_the_history() {
    let (fed, model) = setup();
    let unbounded = run(
        "unbounded",
        pool_config().with_feature_cache(true),
        &fed,
        &model,
    );
    let full_bytes = unbounded.peak_cache_bytes();
    assert!(full_bytes > 0);

    // A budget of half the deduplicated working set forces LRU churn…
    let budget = full_bytes / 2;
    let budgeted = run(
        "budgeted",
        pool_config()
            .with_feature_cache(true)
            .with_cache_budget(budget),
        &fed,
        &model,
    );
    // …but the learning history is unchanged bit for bit,
    assert_eq!(unbounded.learning_history(), budgeted.learning_history());
    // the peak respects the budget in every round,
    assert!(budgeted.peak_cache_bytes() <= budget);
    for record in &budgeted.rounds {
        assert!(record.cache_peak_bytes <= budget);
    }
    // and evictions (with the rebuilds they force) actually happened.
    assert!(budgeted.total_cache_evictions() > 0);
    assert!(budgeted.total_cache_misses() > unbounded.total_cache_misses());
}

#[test]
fn pool_histories_hold_across_all_execution_backends() {
    // The pool is orthogonal to scheduling: sequential, parallel, deadline
    // (neutral knobs) and async(0) replay the same logical-pool history.
    let (fed, model) = setup();
    let base = pool_config()
        .with_feature_cache(true)
        .with_cache_budget(1 << 20);
    let reference = run("seq", base.clone(), &fed, &model);
    for backend in [
        ExecutionBackend::Parallel,
        ExecutionBackend::Deadline,
        ExecutionBackend::Async { max_staleness: 0 },
    ] {
        let result = run(
            backend.short_name(),
            base.clone().with_execution(backend),
            &fed,
            &model,
        );
        assert_eq!(
            reference.learning_history(),
            result.learning_history(),
            "{} diverged",
            backend.short_name()
        );
    }
}

#[test]
fn logical_pool_composes_with_the_paper_method_lineup() {
    let (fed, model) = setup();
    for method in [Method::FedAvg, Method::FedFtEds { pds: 0.5 }] {
        let config = method.configure(pool_config());
        let off = run("off", config.clone(), &fed, &model);
        let on = run("on", config.with_feature_cache(true), &fed, &model);
        assert_eq!(off.learning_history(), on.learning_history(), "{method:?}");
        assert!(off.rounds.iter().all(|r| r.participants == LOGICAL / 10));
    }
    // FreezeLevel::Full has no frozen prefix: nothing is cached even with
    // the registry on, and the history still matches.
    let full = pool_config()
        .with_freeze(FreezeLevel::Full)
        .with_feature_cache(true);
    let result = run("full", full, &fed, &model);
    assert_eq!(result.total_cache_misses(), 0);
    assert_eq!(result.peak_cache_bytes(), 0);
}
