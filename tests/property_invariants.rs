//! Property-based tests on the core invariants of the reproduction:
//! softmax/entropy behaviour, aggregation as a convex combination, selection
//! set sizes and ordering, Dirichlet partitioning conservation, and parameter
//! vector round-trips.

use fedft::core::entropy::rank_by_entropy;
use fedft::core::{Client, ClientUpdate, SelectionStrategy, Server};
use fedft::data::{partition, Dataset};
use fedft::nn::{BlockNet, BlockNetConfig, ParamVector};
use fedft::tensor::{stats, Matrix};
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    (-50.0_f32..50.0).prop_map(|v| (v * 100.0).round() / 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn softmax_rows_are_probability_distributions(
        rows in 1usize..6,
        cols in 2usize..8,
        temperature in 0.05f32..5.0,
        values in proptest::collection::vec(-30.0f32..30.0, 48),
    ) {
        let needed = rows * cols;
        prop_assume!(values.len() >= needed);
        let m = Matrix::from_vec(rows, cols, values[..needed].to_vec()).unwrap();
        let p = stats::softmax_with_temperature(&m, temperature).unwrap();
        for r in 0..rows {
            let row_sum: f32 = p.row(r).iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn entropy_is_bounded_by_log_of_classes(
        cols in 2usize..10,
        values in proptest::collection::vec(-20.0f32..20.0, 10),
    ) {
        prop_assume!(values.len() >= cols);
        let m = Matrix::from_vec(1, cols, values[..cols].to_vec()).unwrap();
        let p = stats::softmax(&m).unwrap();
        let h = stats::shannon_entropy(p.row(0));
        prop_assert!(h >= -1e-6);
        prop_assert!(h <= (cols as f32).ln() + 1e-4);
    }

    #[test]
    fn hardening_never_increases_entropy(
        cols in 2usize..8,
        values in proptest::collection::vec(-10.0f32..10.0, 8),
    ) {
        prop_assume!(values.len() >= cols);
        let m = Matrix::from_vec(1, cols, values[..cols].to_vec()).unwrap();
        let standard = stats::softmax_with_temperature(&m, 1.0).unwrap();
        let hardened = stats::softmax_with_temperature(&m, 0.2).unwrap();
        let h_standard = stats::shannon_entropy(standard.row(0));
        let h_hardened = stats::shannon_entropy(hardened.row(0));
        prop_assert!(h_hardened <= h_standard + 1e-4);
    }

    #[test]
    fn entropy_ranking_is_a_permutation_sorted_descending(
        entropies in proptest::collection::vec(0.0f32..3.0, 1..40),
    ) {
        let order = rank_by_entropy(&entropies);
        prop_assert_eq!(order.len(), entropies.len());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..entropies.len()).collect::<Vec<_>>());
        for pair in order.windows(2) {
            prop_assert!(entropies[pair[0]] >= entropies[pair[1]]);
        }
    }

    #[test]
    fn aggregation_is_a_convex_combination(
        thetas in proptest::collection::vec(
            proptest::collection::vec(small_f32(), 4),
            1..6,
        ),
        weights in proptest::collection::vec(1usize..100, 1..6),
    ) {
        prop_assume!(thetas.len() == weights.len());
        let updates: Vec<ClientUpdate> = thetas
            .iter()
            .zip(&weights)
            .enumerate()
            .map(|(id, (theta, &selected))| ClientUpdate {
                client_id: id,
                theta: ParamVector::from_values(theta.clone()),
                selected_samples: selected,
                local_samples: selected,
                train_loss: 0.0,
                compute_seconds: 1.0,
            })
            .collect();
        let aggregated = Server::new().aggregate(&updates, 0).unwrap();
        for i in 0..4 {
            let min = thetas.iter().map(|t| t[i]).fold(f32::INFINITY, f32::min);
            let max = thetas.iter().map(|t| t[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(aggregated.values()[i] >= min - 1e-3);
            prop_assert!(aggregated.values()[i] <= max + 1e-3);
        }
    }

    #[test]
    fn selection_count_matches_fraction_and_indices_are_unique(
        samples in 1usize..60,
        fraction_pct in 1u32..=100,
        round in 0usize..5,
    ) {
        let fraction = f64::from(fraction_pct) / 100.0;
        let features = Matrix::zeros(samples, 4);
        let labels: Vec<usize> = (0..samples).map(|i| i % 3).collect();
        let dataset = Dataset::new(features, labels, 3).unwrap();
        let mut model = BlockNet::new(&BlockNetConfig::new(4, 3).with_hidden(8, 8, 8), 1);
        let strategy = SelectionStrategy::Random { fraction };
        let selected = strategy.select(&mut model, &dataset, round, 0, 9).unwrap();
        prop_assert_eq!(selected.len(), strategy.selected_count(samples));
        prop_assert!(selected.len() >= 1);
        prop_assert!(selected.len() <= samples);
        let mut unique = selected.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), selected.len());
        prop_assert!(unique.iter().all(|&i| i < samples));
    }

    #[test]
    fn dirichlet_partition_assigns_every_sample_exactly_once(
        samples_per_class in 2usize..20,
        num_classes in 2usize..6,
        clients in 1usize..8,
        alpha_hundredths in 1u32..200,
        seed in 0u64..5,
    ) {
        let alpha = f64::from(alpha_hundredths) / 100.0;
        let total = samples_per_class * num_classes;
        prop_assume!(clients <= total);
        let features = Matrix::zeros(total, 2);
        let labels: Vec<usize> = (0..total).map(|i| i % num_classes).collect();
        let dataset = Dataset::new(features, labels, num_classes).unwrap();
        let shards = partition::dirichlet_partition(&dataset, clients, alpha, seed).unwrap();
        prop_assert_eq!(shards.len(), clients);
        let mut all: Vec<usize> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all.len(), total);
        all.dedup();
        prop_assert_eq!(all.len(), total);
    }

    #[test]
    fn param_vector_roundtrip_preserves_model_output(
        seed in 0u64..50,
        scale in 0.5f32..2.0,
    ) {
        let cfg = BlockNetConfig::new(6, 3).with_hidden(8, 8, 8);
        let mut original = BlockNet::new(&cfg, seed);
        // Perturb the parameters so different seeds exercise different values.
        let perturbed = ParamVector::from_values(
            original.full_vector().values().iter().map(|v| v * scale).collect(),
        );
        original.set_full_vector(&perturbed).unwrap();

        let mut restored = BlockNet::new(&cfg, seed.wrapping_add(1));
        restored.set_full_vector(&original.full_vector()).unwrap();

        let x = Matrix::from_vec(2, 6, (0..12).map(|v| v as f32 * 0.1).collect()).unwrap();
        let a = original.forward(&x).unwrap();
        let b = restored.forward(&x).unwrap();
        prop_assert!(a.approx_eq(&b, 1e-6));
    }
}

#[test]
fn client_update_weighting_is_deterministic_across_identical_runs() {
    // Not a proptest: a single deterministic check that two identical clients
    // produce byte-identical updates, the foundation of reproducibility.
    let features = Matrix::from_vec(12, 4, (0..48).map(|v| (v % 7) as f32 * 0.3).collect()).unwrap();
    let dataset = Dataset::new(features, (0..12).map(|i| i % 3).collect(), 3).unwrap();
    let model = BlockNet::new(&BlockNetConfig::new(4, 3).with_hidden(8, 8, 8), 2);
    let config = fedft::core::FlConfig::default()
        .with_rounds(1)
        .with_local_epochs(2)
        .with_batch_size(4);
    let a = Client::new(0, dataset.clone()).local_update(&model, &config, 0).unwrap();
    let b = Client::new(0, dataset).local_update(&model, &config, 0).unwrap();
    assert_eq!(a, b);
}
