//! Property-based tests on the core invariants of the reproduction:
//! softmax/entropy behaviour, aggregation as a convex combination, selection
//! set sizes and ordering, Dirichlet partitioning conservation, and parameter
//! vector round-trips.
//!
//! The original seed used `proptest`, which is unavailable in the offline
//! build environment; the same invariants are exercised here with a
//! hand-rolled randomised-case loop over the deterministic `rand` shim, so
//! every failure is reproducible from the case index.

use fedft::core::entropy::rank_by_entropy;
use fedft::core::{Client, ClientUpdate, SelectionStrategy, Server};
use fedft::data::{partition, Dataset};
use fedft::nn::{BlockNet, BlockNetConfig, ParamVector};
use fedft::tensor::{stats, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// Runs `body` for `CASES` deterministic random cases, labelling panics with
/// the case index so failures are reproducible.
fn for_each_case(test_name: &str, mut body: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xF00D ^ case.wrapping_mul(0x9E37_79B9));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!("{test_name}: failing case index {case}");
            std::panic::resume_unwind(payload);
        }
    }
}

fn small_f32(rng: &mut StdRng) -> f32 {
    let v = rng.gen_range(-50.0f32..50.0);
    (v * 100.0).round() / 100.0
}

#[test]
fn softmax_rows_are_probability_distributions() {
    for_each_case("softmax_rows_are_probability_distributions", |rng| {
        let rows = rng.gen_range(1usize..6);
        let cols = rng.gen_range(2usize..8);
        let temperature = rng.gen_range(0.05f32..5.0);
        let values: Vec<f32> = (0..rows * cols)
            .map(|_| rng.gen_range(-30.0f32..30.0))
            .collect();
        let m = Matrix::from_vec(rows, cols, values).unwrap();
        let p = stats::softmax_with_temperature(&m, temperature).unwrap();
        for r in 0..rows {
            let row_sum: f32 = p.row(r).iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-4, "row {r} sums to {row_sum}");
            assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    });
}

#[test]
fn entropy_is_bounded_by_log_of_classes() {
    for_each_case("entropy_is_bounded_by_log_of_classes", |rng| {
        let cols = rng.gen_range(2usize..10);
        let values: Vec<f32> = (0..cols).map(|_| rng.gen_range(-20.0f32..20.0)).collect();
        let m = Matrix::from_vec(1, cols, values).unwrap();
        let p = stats::softmax(&m).unwrap();
        let h = stats::shannon_entropy(p.row(0));
        assert!(h >= -1e-6, "entropy {h} must be non-negative");
        assert!(
            h <= (cols as f32).ln() + 1e-4,
            "entropy {h} above ln({cols})"
        );
    });
}

#[test]
fn hardening_never_increases_entropy() {
    for_each_case("hardening_never_increases_entropy", |rng| {
        let cols = rng.gen_range(2usize..8);
        let values: Vec<f32> = (0..cols).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
        let m = Matrix::from_vec(1, cols, values).unwrap();
        let standard = stats::softmax_with_temperature(&m, 1.0).unwrap();
        let hardened = stats::softmax_with_temperature(&m, 0.2).unwrap();
        let h_standard = stats::shannon_entropy(standard.row(0));
        let h_hardened = stats::shannon_entropy(hardened.row(0));
        assert!(
            h_hardened <= h_standard + 1e-4,
            "hardened entropy {h_hardened} exceeds standard {h_standard}"
        );
    });
}

#[test]
fn entropy_ranking_is_a_permutation_sorted_descending() {
    for_each_case(
        "entropy_ranking_is_a_permutation_sorted_descending",
        |rng| {
            let n = rng.gen_range(1usize..40);
            let entropies: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0f32..3.0)).collect();
            let order = rank_by_entropy(&entropies);
            assert_eq!(order.len(), entropies.len());
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..entropies.len()).collect::<Vec<_>>());
            for pair in order.windows(2) {
                assert!(entropies[pair[0]] >= entropies[pair[1]]);
            }
        },
    );
}

#[test]
fn aggregation_is_a_convex_combination() {
    for_each_case("aggregation_is_a_convex_combination", |rng| {
        let clients = rng.gen_range(1usize..6);
        let thetas: Vec<Vec<f32>> = (0..clients)
            .map(|_| (0..4).map(|_| small_f32(rng)).collect())
            .collect();
        let weights: Vec<usize> = (0..clients).map(|_| rng.gen_range(1usize..100)).collect();
        let updates: Vec<ClientUpdate> = thetas
            .iter()
            .zip(&weights)
            .enumerate()
            .map(|(id, (theta, &selected))| ClientUpdate {
                client_id: id,
                theta: ParamVector::from_values(theta.clone()),
                selected_samples: selected,
                local_samples: selected,
                train_loss: 0.0,
                compute_seconds: 1.0,
                cached_compute_seconds: 0.5,
            })
            .collect();
        let aggregated = Server::new().aggregate(&updates, 0).unwrap();
        for i in 0..4 {
            let min = thetas.iter().map(|t| t[i]).fold(f32::INFINITY, f32::min);
            let max = thetas
                .iter()
                .map(|t| t[i])
                .fold(f32::NEG_INFINITY, f32::max);
            assert!(aggregated.values()[i] >= min - 1e-3);
            assert!(aggregated.values()[i] <= max + 1e-3);
        }
    });
}

#[test]
fn selection_count_matches_fraction_and_indices_are_unique() {
    for_each_case(
        "selection_count_matches_fraction_and_indices_are_unique",
        |rng| {
            let samples = rng.gen_range(1usize..60);
            let fraction = f64::from(rng.gen_range(1u32..101)) / 100.0;
            let round = rng.gen_range(0usize..5);
            let strategy = SelectionStrategy::Random { fraction };
            let selected = strategy.select(samples, round, 0, 9).unwrap();
            assert_eq!(selected.len(), strategy.selected_count(samples));
            assert!(!selected.is_empty());
            assert!(selected.len() <= samples);
            let mut unique = selected.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(unique.len(), selected.len());
            assert!(unique.iter().all(|&i| i < samples));
        },
    );
}

#[test]
fn dirichlet_partition_assigns_every_sample_exactly_once() {
    for_each_case(
        "dirichlet_partition_assigns_every_sample_exactly_once",
        |rng| {
            let samples_per_class = rng.gen_range(2usize..20);
            let num_classes = rng.gen_range(2usize..6);
            let alpha = f64::from(rng.gen_range(1u32..200)) / 100.0;
            let seed = rng.gen_range(0u64..5);
            let total = samples_per_class * num_classes;
            let clients = rng.gen_range(1usize..8).min(total);
            let features = Matrix::zeros(total, 2);
            let labels: Vec<usize> = (0..total).map(|i| i % num_classes).collect();
            let dataset = Dataset::new(features, labels, num_classes).unwrap();
            let shards = partition::dirichlet_partition(&dataset, clients, alpha, seed).unwrap();
            assert_eq!(shards.len(), clients);
            let mut all: Vec<usize> = shards.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all.len(), total);
            all.dedup();
            assert_eq!(all.len(), total);
        },
    );
}

#[test]
fn param_vector_roundtrip_preserves_model_output() {
    for_each_case("param_vector_roundtrip_preserves_model_output", |rng| {
        let seed = rng.gen_range(0u64..50);
        let scale = rng.gen_range(0.5f32..2.0);
        let cfg = BlockNetConfig::new(6, 3).with_hidden(8, 8, 8);
        let mut original = BlockNet::new(&cfg, seed);
        // Perturb the parameters so different seeds exercise different values.
        let perturbed = ParamVector::from_values(
            original
                .full_vector()
                .values()
                .iter()
                .map(|v| v * scale)
                .collect(),
        );
        original.set_full_vector(&perturbed).unwrap();

        let mut restored = BlockNet::new(&cfg, seed.wrapping_add(1));
        restored.set_full_vector(&original.full_vector()).unwrap();

        let x = Matrix::from_vec(2, 6, (0..12).map(|v| v as f32 * 0.1).collect()).unwrap();
        let a = original.forward(&x).unwrap();
        let b = restored.forward(&x).unwrap();
        assert!(a.approx_eq(&b, 1e-6));
    });
}

#[test]
fn client_update_weighting_is_deterministic_across_identical_runs() {
    // Not a randomised case: a single deterministic check that two identical
    // clients produce byte-identical updates, the foundation of
    // reproducibility.
    let features =
        Matrix::from_vec(12, 4, (0..48).map(|v| (v % 7) as f32 * 0.3).collect()).unwrap();
    let dataset = Dataset::new(features, (0..12).map(|i| i % 3).collect(), 3).unwrap();
    let model = BlockNet::new(&BlockNetConfig::new(4, 3).with_hidden(8, 8, 8), 2);
    let config = fedft::core::FlConfig::default()
        .with_rounds(1)
        .with_local_epochs(2)
        .with_batch_size(4);
    let a = Client::new(0, dataset.clone())
        .local_update(&model, &config, 0)
        .unwrap();
    let b = Client::new(0, dataset)
        .local_update(&model, &config, 0)
        .unwrap();
    assert_eq!(a, b);
}
