//! End-to-end contract of the **sharded** cache registry: the lock-shard
//! count is pure concurrency plumbing, so it must never change results —
//! learning histories are bit-identical for any shard count across all five
//! execution backends, and under sequential execution even the cache
//! counters (hits/misses/evictions, peak bytes) are identical at any shard
//! count. Byte budgets keep their meaning under sharding: the budget is
//! split across shards and the summed peak stays under the global budget.

use fedft::core::{
    ExecutionBackend, FlConfig, RunResult, SelectionStrategy, Simulation, StreamingParams,
};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::{BlockNet, BlockNetConfig};

const SHARDS: usize = 6;
const LOGICAL: usize = 120;

fn setup() -> (FederatedDataset, BlockNet) {
    let bundle = domains::cifar10_like()
        .with_samples_per_class(12)
        .with_test_samples_per_class(4)
        .generate(5)
        .unwrap();
    let fed = FederatedDataset::partition(
        &bundle.train,
        bundle.test.clone(),
        SHARDS,
        PartitionScheme::Dirichlet { alpha: 0.5 },
        7,
    )
    .unwrap();
    let model_cfg = BlockNetConfig::new(bundle.train.feature_dim(), 10).with_hidden(16, 16, 16);
    (fed, BlockNet::new(&model_cfg, 3))
}

fn pool_config() -> FlConfig {
    FlConfig::default()
        .with_rounds(3)
        .with_local_epochs(1)
        .with_batch_size(16)
        .with_logical_clients(LOGICAL)
        .with_participation(0.1)
        .with_selection(SelectionStrategy::Entropy {
            fraction: 0.5,
            temperature: 0.1,
        })
        .with_feature_cache(true)
        .serial()
}

fn run(label: &str, config: FlConfig, fed: &FederatedDataset, model: &BlockNet) -> RunResult {
    Simulation::new(config)
        .unwrap()
        .run_labelled(label, fed, model)
        .unwrap()
}

#[test]
fn sequential_runs_are_fully_identical_at_any_shard_count() {
    // Under sequential execution the shard count cannot change *anything*:
    // not the learning history, and not a single cache counter — sharding
    // only redistributes entries across locks. Full `rounds` equality, not
    // the cache-zeroed view.
    let (fed, model) = setup();
    let reference = run("shards1", pool_config().with_cache_shards(1), &fed, &model);
    assert!(
        reference.total_cache_hits() > 0,
        "the cache must be in play"
    );
    for shards in [2, 8] {
        let result = run(
            "sweep",
            pool_config().with_cache_shards(shards),
            &fed,
            &model,
        );
        assert_eq!(
            reference.rounds, result.rounds,
            "rounds (including cache counters) diverged at {shards} shards"
        );
    }
    // Auto sizing (the default) picks some power of two — results and
    // counters still match the single-lock run exactly.
    let auto = run("auto", pool_config(), &fed, &model);
    assert_eq!(reference.rounds, auto.rounds);
}

#[test]
fn shard_count_invariance_holds_across_all_five_backends() {
    // The five backends schedule lookups in very different orders (threads,
    // simulated clocks, buffered flushes) — the learning history must be
    // shard-count-invariant under every one of them.
    let (fed, model) = setup();
    let backends: [(&str, ExecutionBackend); 5] = [
        ("sequential", ExecutionBackend::Sequential),
        ("parallel", ExecutionBackend::Parallel),
        ("deadline", ExecutionBackend::Deadline),
        ("async", ExecutionBackend::Async { max_staleness: 2 }),
        (
            "streaming",
            ExecutionBackend::Streaming(StreamingParams::new(5).with_max_staleness(1)),
        ),
    ];
    for (name, backend) in backends {
        let base = pool_config().with_execution(backend);
        let reference = run(name, base.clone().with_cache_shards(1), &fed, &model);
        for shards in [2, 8] {
            let result = run(name, base.clone().with_cache_shards(shards), &fed, &model);
            assert_eq!(
                reference.learning_history(),
                result.learning_history(),
                "{name} history diverged at {shards} shards"
            );
        }
    }
}

#[test]
fn split_budget_still_bounds_the_peak_and_preserves_the_history() {
    let (fed, model) = setup();
    let unbounded = run("unbounded", pool_config(), &fed, &model);
    let full_bytes = unbounded.peak_cache_bytes();
    assert!(full_bytes > 0);

    // Half the deduplicated working set over 2 lock shards: each shard
    // budgets a quarter of the set, so whichever shard the key hash favours
    // must churn — while the history stays bit-identical and the *summed*
    // peak honours the *global* budget (per-shard evict-before-insert over
    // the exact split is what guarantees this without any global lock).
    let budget = full_bytes / 2;
    let budgeted = run(
        "budgeted",
        pool_config().with_cache_shards(2).with_cache_budget(budget),
        &fed,
        &model,
    );
    assert_eq!(unbounded.learning_history(), budgeted.learning_history());
    assert!(budgeted.peak_cache_bytes() <= budget);
    for record in &budgeted.rounds {
        assert!(record.cache_peak_bytes <= budget);
    }
    assert!(budgeted.total_cache_evictions() > 0);
    assert!(budgeted.total_cache_misses() > unbounded.total_cache_misses());

    // Finer sharding shrinks the per-shard slice below typical entry sizes
    // (the documented budget-split granularity): entries that no longer fit
    // their slice are served but not retained — so rebuild misses can only
    // grow, the peak stays legal, and the history still never moves.
    let fine = run(
        "fine",
        pool_config().with_cache_shards(8).with_cache_budget(budget),
        &fed,
        &model,
    );
    assert_eq!(unbounded.learning_history(), fine.learning_history());
    assert!(fine.peak_cache_bytes() <= budget);
    assert!(fine.total_cache_misses() >= budgeted.total_cache_misses());
}
