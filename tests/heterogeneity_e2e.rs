//! End-to-end tests of the device-heterogeneity subsystem: with a two-tier
//! device mix and a finite round deadline, full-model FedAvg loses the slow
//! tier while FedFT's partial-training workload keeps every device in the
//! round — the paper's straggler motivation as an *emergent* result — and
//! with an infinite deadline the deadline scheduler is bit-identical to the
//! sequential reference executor.

use fedft::core::{ExecutionBackend, FlConfig, HeterogeneityModel, Method, RunResult, Simulation};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::{BlockNet, BlockNetConfig};

const CLIENTS: usize = 12;
const SEED: u64 = 4;

fn setup() -> (FederatedDataset, BlockNet) {
    let target = domains::cifar10_like()
        .with_samples_per_class(24)
        .with_test_samples_per_class(6)
        .generate(2)
        .expect("target generation");
    // IID partitioning keeps the shards equally sized, so predicted round
    // times separate cleanly by tier.
    let fed = FederatedDataset::partition(
        &target.train,
        target.test.clone(),
        CLIENTS,
        PartitionScheme::Iid,
        7,
    )
    .expect("partitioning");
    let model_cfg = BlockNetConfig::new(target.train.feature_dim(), target.train.num_classes())
        .with_hidden(24, 24, 24);
    let model = BlockNet::new(&model_cfg, 5);
    (fed, model)
}

fn base_config() -> FlConfig {
    FlConfig::default()
        .with_rounds(3)
        .with_local_epochs(2)
        .with_batch_size(16)
        .with_seed(SEED)
        .with_heterogeneity(HeterogeneityModel::two_tier())
}

/// Predicted simulated round seconds of every client under `config`,
/// computed exactly as the deadline scheduler computes them.
fn predicted_times(fed: &FederatedDataset, model: &BlockNet, config: &FlConfig) -> Vec<f64> {
    config.heterogeneity.predicted_times(fed, model, config)
}

fn tier_of(config: &FlConfig, client_id: usize) -> usize {
    config
        .heterogeneity
        .profile_for(client_id, config.seed)
        .tier_index
}

/// A deadline every client meets under FedFT but only fast-tier clients
/// meet under full-model FedAvg (panics if the workloads do not separate,
/// which would make the scenario vacuous).
fn separating_deadline(
    fed: &FederatedDataset,
    model: &BlockNet,
    fedavg: &FlConfig,
    fedft: &FlConfig,
) -> f64 {
    let avg_times = predicted_times(fed, model, fedavg);
    let ft_times = predicted_times(fed, model, fedft);
    let slow: Vec<usize> = (0..CLIENTS)
        .filter(|&id| tier_of(fedavg, id) == 1)
        .collect();
    let fast: Vec<usize> = (0..CLIENTS)
        .filter(|&id| tier_of(fedavg, id) == 0)
        .collect();
    assert!(
        !slow.is_empty() && !fast.is_empty(),
        "seed {SEED} must place clients in both tiers (fast {fast:?}, slow {slow:?})"
    );

    let ft_max = ft_times.iter().copied().fold(0.0_f64, f64::max);
    let avg_fast_max = fast.iter().map(|&id| avg_times[id]).fold(0.0_f64, f64::max);
    let avg_slow_min = slow
        .iter()
        .map(|&id| avg_times[id])
        .fold(f64::INFINITY, f64::min);
    let lo = ft_max.max(avg_fast_max);
    assert!(
        lo < avg_slow_min,
        "workloads must separate: every FedFT client and fast-tier FedAvg \
         client ({lo:.4}s) below the slowest-tier FedAvg minimum ({avg_slow_min:.4}s)"
    );
    (lo + avg_slow_min) / 2.0
}

fn run(config: FlConfig, fed: &FederatedDataset, model: &BlockNet) -> RunResult {
    Simulation::new(config)
        .expect("valid config")
        .run(fed, model)
        .expect("simulation succeeds")
}

#[test]
fn deadline_drops_slow_tier_under_fedavg_but_not_under_fedft() {
    let (fed, model) = setup();
    let fedavg_cfg = Method::FedAvg.configure(base_config());
    let fedft_cfg = Method::FedFtEds { pds: 0.25 }.configure(base_config());
    let deadline = separating_deadline(&fed, &model, &fedavg_cfg, &fedft_cfg);
    let slow_count = (0..CLIENTS)
        .filter(|&id| tier_of(&fedavg_cfg, id) == 1)
        .count();
    let fast_count = CLIENTS - slow_count;

    let fedavg = run(
        fedavg_cfg
            .clone()
            .with_deadline(deadline)
            .with_execution(ExecutionBackend::Deadline),
        &fed,
        &model,
    );
    for record in &fedavg.rounds {
        assert_eq!(
            record.dropped_clients, slow_count,
            "every slow-tier client must miss the deadline under FedAvg"
        );
        assert_eq!(record.participants, fast_count);
        assert_eq!(record.tier_participants, vec![fast_count, 0]);
        // The server waited out the full deadline for the missing clients.
        assert_eq!(record.round_wall_seconds, deadline);
    }

    let fedft = run(
        fedft_cfg
            .with_deadline(deadline)
            .with_execution(ExecutionBackend::Deadline),
        &fed,
        &model,
    );
    for record in &fedft.rounds {
        assert_eq!(
            record.dropped_clients, 0,
            "the FedFT workload must fit the deadline on every tier"
        );
        assert_eq!(record.participants, CLIENTS);
        assert_eq!(record.tier_participants, vec![fast_count, slow_count]);
        assert!(record.round_wall_seconds <= deadline);
    }
    assert!(fedft.total_dropped_clients() == 0 && fedavg.total_dropped_clients() > 0);
}

#[test]
fn infinite_deadline_is_bit_identical_to_the_sequential_executor() {
    let (fed, model) = setup();
    // Same heterogeneous mix on both sides: the deadline scheduler with an
    // infinite deadline (and no offline probability) must reproduce the
    // sequential reference history bit for bit, wall-clock fields included.
    let config = Method::FedFtEds { pds: 0.25 }.configure(base_config());
    let sequential = run(
        config.clone().with_execution(ExecutionBackend::Sequential),
        &fed,
        &model,
    );
    let deadline = run(
        config.with_execution(ExecutionBackend::Deadline),
        &fed,
        &model,
    );
    assert_eq!(sequential.rounds, deadline.rounds);
    assert_eq!(sequential.label, deadline.label);
}

#[test]
fn offline_probability_produces_availability_drops_without_deadline() {
    let (fed, model) = setup();
    let mix = HeterogeneityModel::from_tiers(vec![
        fedft::core::DeviceTier::new("flaky", 1.0, 1.0).with_drop_probability(0.3)
    ]);
    let config = Method::FedFtEds { pds: 0.25 }
        .configure(base_config().with_rounds(6))
        .with_heterogeneity(mix)
        .with_execution(ExecutionBackend::Deadline);
    let result = run(config, &fed, &model);
    assert!(
        result.total_dropped_clients() > 0,
        "a 30% offline probability must produce drops over 6 rounds"
    );
    for record in &result.rounds {
        assert_eq!(record.participants + record.dropped_clients, CLIENTS);
    }
}
