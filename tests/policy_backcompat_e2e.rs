//! Policy-layer back-compat: the pluggable policy families must be
//! invisible when left at their defaults.
//!
//! The policy layer (`fedft::core::policy`) replaced the closed
//! data-selection dispatch and the fixed uniform client sampler with trait
//! families. Its bit-identity contract says a default configuration —
//! entropy data selection, uniform client selection, one global freeze
//! level — runs exactly the pre-policy code path on exactly the same named
//! RNG streams. These tests pin that contract end to end, on every
//! execution backend:
//!
//! * spelling the default policies out explicitly is bit-identical to not
//!   mentioning them at all;
//! * all five backends (sequential, parallel, neutral deadline, async with
//!   staleness bound 0, degenerate streaming) still agree bit for bit on
//!   the default-policy run — the pre-existing backend-equivalence pin,
//!   re-asserted through the policy layer;
//! * and the equivalence survives partial participation, where the uniform
//!   client-selection policy actually exercises its sampling path.

use fedft::core::{
    ClientSelection, ExecutionBackend, FlConfig, HeterogeneityModel, Method, RoundRecord,
    RunResult, SelectionStrategy, Simulation, StreamingParams,
};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::{BlockNet, BlockNetConfig};

const CLIENTS: usize = 8;
const SEED: u64 = 21;

fn setup() -> (FederatedDataset, BlockNet) {
    let target = domains::cifar10_like()
        .with_samples_per_class(20)
        .with_test_samples_per_class(6)
        .generate(3)
        .expect("target generation");
    let fed = FederatedDataset::partition(
        &target.train,
        target.test.clone(),
        CLIENTS,
        PartitionScheme::Dirichlet { alpha: 0.5 },
        7,
    )
    .expect("partitioning");
    let model_cfg = BlockNetConfig::new(target.train.feature_dim(), target.train.num_classes())
        .with_hidden(24, 24, 24);
    let model = BlockNet::new(&model_cfg, 5);
    (fed, model)
}

fn base_config() -> FlConfig {
    Method::FedFtEds { pds: 0.5 }.configure(
        FlConfig::default()
            .with_rounds(3)
            .with_local_epochs(2)
            .with_batch_size(16)
            .with_seed(SEED),
    )
}

/// The five backends under test, applied to a base configuration. The
/// deadline is infinite (neutral), async runs with staleness bound 0 and
/// streaming in its degenerate one-flush-per-round shape — the
/// configurations documented to be bit-identical to the sequential backend.
fn backend_configs(base: &FlConfig, cohort: usize) -> Vec<(&'static str, FlConfig)> {
    vec![
        (
            "sequential",
            base.clone().with_execution(ExecutionBackend::Sequential),
        ),
        (
            "parallel",
            base.clone().with_execution(ExecutionBackend::Parallel),
        ),
        (
            "deadline",
            base.clone().with_execution(ExecutionBackend::Deadline),
        ),
        ("async-0", base.clone().with_async(0)),
        (
            "streaming",
            base.clone().with_streaming(StreamingParams::new(cohort)),
        ),
    ]
}

fn run(config: FlConfig, fed: &FederatedDataset, model: &BlockNet) -> RunResult {
    Simulation::new(config)
        .expect("valid config")
        .run(fed, model)
        .expect("simulation succeeds")
}

/// A base configuration with the default policies named explicitly. Must be
/// a no-op.
fn explicit_defaults(base: &FlConfig) -> FlConfig {
    base.clone()
        .with_selection(SelectionStrategy::Entropy {
            fraction: 0.5,
            temperature: 0.1,
        })
        .with_client_selection(ClientSelection::Uniform)
}

#[test]
fn explicit_default_policies_are_bit_identical_on_every_backend() {
    let (fed, model) = setup();
    let base = base_config();
    for (name, config) in backend_configs(&base, CLIENTS) {
        let implicit = run(config.clone(), &fed, &model);
        let explicit = run(explicit_defaults(&config), &fed, &model);
        assert_eq!(
            implicit.learning_history(),
            explicit.learning_history(),
            "explicit default policies changed the {name} backend"
        );
    }
}

#[test]
fn all_backends_agree_on_the_default_policy_run() {
    let (fed, model) = setup();
    let base = base_config();
    let mut reference: Option<(&'static str, Vec<RoundRecord>)> = None;
    for (name, config) in backend_configs(&base, CLIENTS) {
        let history = run(config, &fed, &model).learning_history();
        match &reference {
            None => reference = Some((name, history)),
            Some((ref_name, ref_history)) => assert_eq!(
                &history, ref_history,
                "{name} diverged from {ref_name} under default policies"
            ),
        }
    }
}

#[test]
fn partial_participation_defaults_agree_across_synchronous_backends() {
    // Partial participation drives the uniform client-selection policy
    // through its actual shuffle-and-truncate path. Streaming stays out:
    // its degenerate shape requires the full cohort per flush.
    let (fed, model) = setup();
    let base = base_config().with_participation(0.5);
    let sequential = run(
        base.clone().with_execution(ExecutionBackend::Sequential),
        &fed,
        &model,
    );
    assert!((sequential.mean_participants() - 4.0).abs() < 1e-9);
    for (name, config) in [
        (
            "parallel",
            base.clone().with_execution(ExecutionBackend::Parallel),
        ),
        (
            "deadline",
            base.clone().with_execution(ExecutionBackend::Deadline),
        ),
        ("async-0", base.clone().with_async(0)),
    ] {
        let result = run(config.clone(), &fed, &model);
        assert_eq!(
            result.learning_history(),
            sequential.learning_history(),
            "{name} diverged from sequential at participation 0.5"
        );
        let explicit = run(explicit_defaults(&config), &fed, &model);
        assert_eq!(
            explicit.learning_history(),
            sequential.learning_history(),
            "explicit defaults diverged on {name} at participation 0.5"
        );
    }
}

#[test]
fn non_default_policies_change_the_run_on_synchronous_backends() {
    // The inverse pin: the policy layer is not a façade — swapping any
    // single axis away from the defaults produces a genuinely different
    // run on both synchronous backends.
    let (fed, model) = setup();
    let base = base_config()
        .with_participation(0.5)
        .with_heterogeneity(HeterogeneityModel::two_tier());
    for backend in [ExecutionBackend::Sequential, ExecutionBackend::Parallel] {
        let base = base.clone().with_execution(backend);
        let baseline = run(base.clone(), &fed, &model);
        let variants = vec![
            base.clone()
                .with_selection(SelectionStrategy::LossProportional { fraction: 0.5 }),
            base.clone()
                .with_selection(SelectionStrategy::GradientNorm { fraction: 0.5 }),
            base.clone()
                .with_client_selection(ClientSelection::TierAware),
            base.clone()
                .with_client_selection(ClientSelection::SimilarityAware),
        ];
        for variant in variants {
            let result = run(variant, &fed, &model);
            assert_ne!(
                result.learning_history(),
                baseline.learning_history(),
                "a non-default policy failed to change the run"
            );
        }
    }
}
