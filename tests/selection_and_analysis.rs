//! Cross-crate integration tests for the data-selection pipeline and the
//! analysis utilities (entropy histograms, CKA, report tables).

use fedft::analysis::cka::{client_cka_matrix, mean_offdiagonal};
use fedft::analysis::curves::{efficiency_points, learning_curves};
use fedft::analysis::Table;
use fedft::core::entropy::{sample_entropies, EntropyHistogram};
use fedft::core::pretrain::pretrain_global_model;
use fedft::core::{Client, FlConfig, Method, SelectionStrategy, Simulation};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::{BlockId, BlockNet, BlockNetConfig};

fn pretrained_setup() -> (FederatedDataset, BlockNet) {
    let source = domains::source_imagenet32()
        .with_samples_per_class(40)
        .generate(1)
        .unwrap();
    let target = domains::cifar10_like()
        .with_samples_per_class(16)
        .with_test_samples_per_class(8)
        .generate(2)
        .unwrap();
    let model_cfg = BlockNetConfig::new(target.train.feature_dim(), target.train.num_classes())
        .with_hidden(32, 32, 32);
    let global = pretrain_global_model(&model_cfg, &source, 10, 3).unwrap();
    let fed = FederatedDataset::partition(
        &target.train,
        target.test.clone(),
        6,
        PartitionScheme::Dirichlet { alpha: 0.1 },
        5,
    )
    .unwrap();
    (fed, global)
}

#[test]
fn hardened_softmax_shifts_the_entropy_distribution_left() {
    let (fed, mut model) = pretrained_setup();
    let data = fed.client(0);
    let standard = sample_entropies(&mut model, data.features(), 1.0).unwrap();
    let hardened = sample_entropies(&mut model, data.features(), 0.1).unwrap();
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    assert!(mean(&hardened) < mean(&standard));

    let hist_standard = EntropyHistogram::from_entropies(&standard, data.num_classes(), 8).unwrap();
    let hist_hardened = EntropyHistogram::from_entropies(&hardened, data.num_classes(), 8).unwrap();
    let low_mass = |h: &EntropyHistogram| h.counts[..4].iter().sum::<usize>();
    assert!(low_mass(&hist_hardened) >= low_mass(&hist_standard));
}

#[test]
fn entropy_selection_changes_as_the_model_evolves() {
    // EDS is dynamic: after some training the model is confident about
    // different samples, so the selected subset should change between rounds.
    let (fed, global) = pretrained_setup();
    let strategy = SelectionStrategy::Entropy {
        fraction: 0.3,
        temperature: 0.1,
    };
    let mut before = global.clone();
    let entropies_before = sample_entropies(&mut before, fed.client(0).features(), 0.1).unwrap();
    let selected_before = strategy.select_from_entropies(&entropies_before).unwrap();

    // Train the global model federatedly for a few rounds, then reselect.
    let config = Method::FedFtEds { pds: 0.5 }.configure(
        FlConfig::default()
            .with_rounds(5)
            .with_local_epochs(2)
            .with_seed(1),
    );
    let sim = Simulation::new(config.clone()).unwrap();
    sim.run(&fed, &global).unwrap();
    // Reproduce the trained global model by re-running one client update and
    // checking the selection machinery still works on an updated model.
    let client = Client::new(0, fed.client(0).clone());
    let update = client.local_update(&global, &config, 0).unwrap();
    let mut after = global.clone();
    after
        .set_trainable_vector(config.freeze, &update.theta)
        .unwrap();
    let entropies_after = sample_entropies(&mut after, fed.client(0).features(), 0.1).unwrap();
    let selected_after = strategy.select_from_entropies(&entropies_after).unwrap();

    assert_eq!(selected_before.len(), selected_after.len());
    assert_ne!(
        selected_before, selected_after,
        "selection should adapt to the updated model"
    );
}

#[test]
fn cka_is_higher_for_identically_initialised_clients_than_for_diverged_ones() {
    let (fed, global) = pretrained_setup();
    // Clones of the same model are perfectly aligned.
    let mut identical = vec![global.clone(), global.clone(), global.clone()];
    let aligned = client_cka_matrix(&mut identical, fed.test().features(), BlockId::Up).unwrap();
    assert!(mean_offdiagonal(&aligned) > 0.999);

    // Models fine-tuned on different non-IID shards drift apart.
    let config = Method::FedAvg.configure(
        FlConfig::default()
            .with_rounds(1)
            .with_local_epochs(3)
            .with_seed(2),
    );
    let mut drifted = Vec::new();
    for k in 0..3 {
        let client = Client::new(k, fed.client(k).clone());
        let update = client.local_update(&global, &config, 0).unwrap();
        let mut model = global.clone();
        model
            .set_trainable_vector(config.freeze, &update.theta)
            .unwrap();
        drifted.push(model);
    }
    let diverged = client_cka_matrix(&mut drifted, fed.test().features(), BlockId::Up).unwrap();
    assert!(
        mean_offdiagonal(&diverged) < mean_offdiagonal(&aligned),
        "locally trained models must be less aligned than identical copies"
    );
}

#[test]
fn run_results_feed_the_analysis_and_reporting_pipeline() {
    let (fed, global) = pretrained_setup();
    let base = FlConfig::default()
        .with_rounds(3)
        .with_local_epochs(1)
        .with_seed(4);
    let runs = vec![
        Simulation::new(Method::FedAvg.configure(base.clone()))
            .unwrap()
            .run_labelled("FedAvg", &fed, &global)
            .unwrap(),
        Simulation::new(Method::FedFtEds { pds: 0.5 }.configure(base))
            .unwrap()
            .run_labelled("FedFT-EDS (50%)", &fed, &global)
            .unwrap(),
    ];

    let points = efficiency_points(&runs);
    assert_eq!(points.len(), 2);
    let eds_point = points.iter().find(|p| p.label.contains("EDS")).unwrap();
    let avg_point = points.iter().find(|p| p.label == "FedAvg").unwrap();
    assert!(eds_point.total_client_seconds < avg_point.total_client_seconds);

    let curves = learning_curves(&runs);
    assert_eq!(curves[0].accuracy_pct.len(), 3);

    let mut table = Table::new(vec!["method".into(), "best acc".into()]);
    for run in &runs {
        table
            .add_row(vec![
                run.label.clone(),
                format!("{:.2}", run.best_accuracy() * 100.0),
            ])
            .unwrap();
    }
    let markdown = table.to_markdown();
    assert!(markdown.contains("FedFT-EDS"));
    let csv = table.to_csv();
    assert_eq!(csv.lines().count(), 3);
}

#[test]
fn aggregation_weights_follow_selected_sample_counts_in_a_real_round() {
    let (fed, global) = pretrained_setup();
    let config = Method::FedFtEds { pds: 0.5 }.configure(
        FlConfig::default()
            .with_rounds(1)
            .with_local_epochs(1)
            .with_seed(6),
    );
    let server = fedft::core::Server::new();
    let mut updates = Vec::new();
    for k in 0..fed.num_clients() {
        let client = Client::new(k, fed.client(k).clone());
        updates.push(client.local_update(&global, &config, 0).unwrap());
    }
    let weights = server.aggregation_weights(&updates);
    assert_eq!(weights.len(), fed.num_clients());
    assert!((weights.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    // Clients with more selected samples get proportionally more weight.
    let total: usize = updates.iter().map(|u| u.selected_samples).sum();
    for (weight, update) in weights.iter().zip(&updates) {
        let expected = update.selected_samples as f32 / total as f32;
        assert!((weight - expected).abs() < 1e-6);
    }
    let theta = server.aggregate(&updates, 0).unwrap();
    assert_eq!(theta.len(), updates[0].theta.len());
}
