//! Asynchronous bounded-staleness rounds: overlap instead of dropping.
//!
//! The deadline scheduler (`examples/heterogeneity.rs`) answers stragglers
//! by dropping them; the async executor answers them by letting rounds
//! *overlap*. A 24-client two-tier pool with 50% participation runs the
//! same FedFT-EDS task under a sweep of `max_staleness` bounds:
//!
//! * `s ≤ 0` stalls every dispatch until the current global model exists —
//!   the synchronous reference, bit-identical to `SequentialExecutor`
//!   (asserted below);
//! * larger bounds let clients train against models up to `s` versions old,
//!   so fast devices no longer idle while a slow-tier client finishes and
//!   the simulated wall clock shrinks — at the price of stale updates,
//!   which the server discounts by `1 / (1 + staleness)` during
//!   aggregation.
//!
//! Run with: `cargo run --release --example async_staleness`

use fedft::core::pretrain::pretrain_global_model;
use fedft::core::{FlConfig, HeterogeneityModel, Method, Simulation};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::BlockNetConfig;

const CLIENTS: usize = 24;
const ROUNDS: usize = 8;
const SEED: u64 = 11;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = domains::source_imagenet32()
        .with_samples_per_class(80)
        .generate(1)?;
    let target = domains::cifar10_like()
        .with_samples_per_class(32)
        .generate(2)?;
    let fed = FederatedDataset::partition(
        &target.train,
        target.test.clone(),
        CLIENTS,
        PartitionScheme::Dirichlet { alpha: 0.5 },
        3,
    )?;
    let model_cfg = BlockNetConfig::new(target.train.feature_dim(), target.train.num_classes());
    let pretrained = pretrain_global_model(&model_cfg, &source, 15, 7)?;

    let base = Method::FedFtEds { pds: 0.1 }.configure(
        FlConfig::default()
            .with_rounds(ROUNDS)
            .with_local_epochs(2)
            .with_seed(SEED)
            .with_participation(0.5)
            .with_heterogeneity(HeterogeneityModel::two_tier()),
    );

    // The synchronous reference every async run is compared against.
    let sequential =
        Simulation::new(base.clone().serial())?.run_labelled("seq", &fed, &pretrained)?;
    let sync_wall = sequential.total_wall_seconds();

    println!(
        "{CLIENTS} clients, two-tier mix, 50% participation, {ROUNDS} rounds\n\
         synchronous wall clock: {sync_wall:.1}s simulated\n"
    );
    println!(
        "{:<12} {:>8} {:>10} {:>9} {:>11} {:>11}",
        "bound", "acc (%)", "wall (s)", "speedup", "mean stale", "max stale"
    );
    for max_staleness in [0usize, 1, 2, 4] {
        let config = base.clone().with_async(max_staleness);
        let label = format!("async s≤{max_staleness}");
        let result = Simulation::new(config)?.run_labelled(label.clone(), &fed, &pretrained)?;
        if max_staleness == 0 {
            // The determinism contract: a zero staleness bound reproduces
            // the sequential round history bit for bit.
            assert_eq!(
                result.rounds, sequential.rounds,
                "async s<=0 must match the sequential history"
            );
        }
        assert!(result.max_update_staleness() <= max_staleness);
        println!(
            "{label:<12} {:>8.2} {:>10.1} {:>8.2}x {:>11.2} {:>11}",
            result.best_accuracy() * 100.0,
            result.total_wall_seconds(),
            sync_wall / result.total_wall_seconds(),
            result.mean_update_staleness(),
            result.max_update_staleness(),
        );
    }
    println!(
        "\nA zero bound stalls dispatch until the fresh model exists (and is\n\
         bit-identical to the sequential backend, asserted above); relaxing\n\
         it overlaps rounds, shrinking the simulated wall clock while the\n\
         server discounts stale updates during aggregation."
    );
    Ok(())
}
