//! Device heterogeneity and deadline-based straggler scheduling.
//!
//! The same 24-client federated task is run over three device populations —
//! homogeneous, a fast/slow two-tier mix and a high/mid/low three-tier
//! fleet — under a synchronous round deadline sized for full-model FedAvg
//! on a *nominal* device (1.5× headroom). On the homogeneous pool everyone
//! meets it; in the heterogeneous mixes the slow tiers miss it under
//! FedAvg's workload and drop out on their own, while FedFT-EDS's reduced
//! workload fits on every tier, so the whole pool keeps participating. The
//! straggler effect is *emergent*: nothing configures a participation
//! fraction.
//!
//! Run with: `cargo run --release --example heterogeneity`

use fedft::core::pretrain::pretrain_global_model;
use fedft::core::{ExecutionBackend, FlConfig, HeterogeneityModel, Method, RunResult, Simulation};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::{BlockNet, BlockNetConfig};

const CLIENTS: usize = 24;
const ROUNDS: usize = 6;
const SEED: u64 = 11;

/// The largest predicted round time any client needs under `config` —
/// deadline calibration, same formula the scheduler itself uses.
fn slowest_client_seconds(fed: &FederatedDataset, model: &BlockNet, config: &FlConfig) -> f64 {
    config
        .heterogeneity
        .predicted_times(fed, model, config)
        .into_iter()
        .fold(0.0_f64, f64::max)
}

fn describe(label: &str, mix: &HeterogeneityModel, result: &RunResult) {
    let tiers = result
        .tier_participation_totals()
        .iter()
        .zip(mix.tier_names())
        .map(|(&count, name)| format!("{name}:{count}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!(
        "{label:<26} {:>8.2} {:>8.1} {:>7} {:>9.1}   {tiers}",
        result.best_accuracy() * 100.0,
        result.mean_participants(),
        result.total_dropped_clients(),
        result.total_wall_seconds(),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = domains::source_imagenet32()
        .with_samples_per_class(80)
        .generate(1)?;
    let target = domains::cifar10_like()
        .with_samples_per_class(32)
        .generate(2)?;
    let fed = FederatedDataset::partition(
        &target.train,
        target.test.clone(),
        CLIENTS,
        PartitionScheme::Dirichlet { alpha: 0.5 },
        3,
    )?;
    let model_cfg = BlockNetConfig::new(target.train.feature_dim(), target.train.num_classes());
    let pretrained = pretrain_global_model(&model_cfg, &source, 15, 7)?;

    let mixes: Vec<(&str, HeterogeneityModel)> = vec![
        ("uniform", HeterogeneityModel::uniform()),
        ("two-tier (fast/slow)", HeterogeneityModel::two_tier()),
        ("three-tier (hi/mid/low)", HeterogeneityModel::three_tier()),
    ];

    // One deadline for every mix: the slowest *nominal* device finishes a
    // full-model FedAvg round with 50% headroom. Slower-than-nominal tiers
    // have no such guarantee — that is where stragglers emerge.
    let nominal = Method::FedAvg.configure(
        FlConfig::default()
            .with_local_epochs(2)
            .with_seed(SEED)
            .with_heterogeneity(HeterogeneityModel::uniform()),
    );
    let deadline = 1.5 * slowest_client_seconds(&fed, &pretrained, &nominal);

    println!("{CLIENTS} clients, Dirichlet(0.5), {ROUNDS} rounds, deadline {deadline:.2}s\n");
    println!(
        "{:<26} {:>8} {:>8} {:>7} {:>9}   per-tier participation",
        "method / mix", "acc (%)", "clients", "drops", "wall (s)"
    );
    for (name, mix) in mixes {
        let base = FlConfig::default()
            .with_rounds(ROUNDS)
            .with_local_epochs(2)
            .with_seed(SEED)
            .with_heterogeneity(mix.clone())
            .with_execution(ExecutionBackend::Deadline);

        println!("-- {name}");
        for method in [Method::FedAvg, Method::FedFtEds { pds: 0.1 }] {
            let config = method.configure(base.clone()).with_deadline(deadline);
            let result = Simulation::new(config)?.run_labelled(method.name(), &fed, &pretrained)?;
            describe(&result.label.clone(), &mix, &result);
        }
    }
    println!(
        "\nFedAvg loses the slow tiers to the deadline; FedFT-EDS keeps every\n\
         device in the round because its partial-training workload fits."
    );
    Ok(())
}
