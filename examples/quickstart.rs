//! Quickstart: run FedFT-EDS end to end on a small synthetic image task and
//! compare it against plain FedAvg.
//!
//! Run with: `cargo run --release --example quickstart`

use fedft::core::pretrain::pretrain_global_model;
use fedft::core::{ExecutionBackend, FlConfig, Method, Simulation};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::BlockNetConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: a source domain for pretraining and a CIFAR-10-like federated
    //    target task with strong label skew across 10 clients.
    let source = domains::source_imagenet32()
        .with_samples_per_class(120)
        .generate(1)?;
    let target = domains::cifar10_like()
        .with_samples_per_class(20)
        .generate(2)?;
    let fed = FederatedDataset::partition(
        &target.train,
        target.test.clone(),
        10,
        PartitionScheme::Dirichlet { alpha: 0.1 },
        3,
    )?;
    println!(
        "federated task: {} clients, {} training samples, {} test samples",
        fed.num_clients(),
        fed.total_train_samples(),
        fed.test().len()
    );

    // 2. Global model: pretrained on the source domain; the lower blocks act
    //    as the frozen feature extractor during federated fine-tuning.
    let model_cfg = BlockNetConfig::new(target.train.feature_dim(), target.train.num_classes());
    let global = pretrain_global_model(&model_cfg, &source, 20, 7)?;

    // 3. Run FedAvg and FedFT-EDS with the same round budget and compare.
    let base = FlConfig::default()
        .with_rounds(15)
        .with_seed(11)
        .with_execution(ExecutionBackend::Parallel);
    for method in [Method::FedAvg, Method::FedFtEds { pds: 0.1 }] {
        let config = method.configure(base.clone());
        let result = Simulation::new(config)?.run_labelled(method.name(), &fed, &global)?;
        println!(
            "{:<18} best accuracy {:>5.1}%   total client time {:>8.1}s   learning efficiency {:.4} %/s",
            result.label,
            result.best_accuracy() * 100.0,
            result.total_client_seconds(),
            result.learning_efficiency(),
        );
    }
    Ok(())
}
