//! Straggler rescue (the Table III setting): with a large client pool, heavy
//! full-model FedAvg loses stragglers (only a fraction of clients participate
//! each round), while FedFT-EDS keeps every client in the loop because its
//! per-round workload is a fraction of FedAvg's.
//!
//! Run with: `cargo run --release --example straggler_rescue`

use fedft::core::pretrain::pretrain_global_model;
use fedft::core::{ExecutionBackend, FlConfig, Method, Simulation};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::{BlockNet, BlockNetConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const CLIENTS: usize = 40;
    const ROUNDS: usize = 10;

    let source = domains::source_imagenet32()
        .with_samples_per_class(120)
        .generate(1)?;
    let target = domains::cifar10_like()
        .with_samples_per_class(40)
        .generate(2)?;
    let fed = FederatedDataset::partition(
        &target.train,
        target.test.clone(),
        CLIENTS,
        PartitionScheme::Dirichlet { alpha: 0.1 },
        3,
    )?;
    let model_cfg = BlockNetConfig::new(target.train.feature_dim(), target.train.num_classes());
    let pretrained = pretrain_global_model(&model_cfg, &source, 20, 7)?;
    let scratch = BlockNet::new(&model_cfg, 7);

    let base = FlConfig::default()
        .with_rounds(ROUNDS)
        .with_seed(9)
        .with_execution(ExecutionBackend::Parallel);

    // FedAvg under increasingly severe straggler dropout, against FedFT-EDS
    // with full participation.
    let scenarios: Vec<(String, Method, f64)> = vec![
        ("FedAvg w/o pretraining".into(), Method::FedAvgScratch, 1.0),
        ("FedAvg, 100% participation".into(), Method::FedAvg, 1.0),
        ("FedAvg, 20% participation".into(), Method::FedAvg, 0.2),
        ("FedAvg, 10% participation".into(), Method::FedAvg, 0.1),
        (
            "FedFT-EDS (10%), full part.".into(),
            Method::FedFtEds { pds: 0.1 },
            1.0,
        ),
        (
            "FedFT-EDS (50%), full part.".into(),
            Method::FedFtEds { pds: 0.5 },
            1.0,
        ),
    ];

    println!("{CLIENTS} clients, Dirichlet(0.1), {ROUNDS} rounds\n");
    println!(
        "{:<30} {:>12} {:>16} {:>18}",
        "method", "best acc (%)", "client time (s)", "efficiency (%/s)"
    );
    for (label, method, participation) in scenarios {
        let config = method
            .configure(base.clone())
            .with_participation(participation);
        let initial = if method.uses_pretraining() {
            &pretrained
        } else {
            &scratch
        };
        let result = Simulation::new(config)?.run_labelled(label.clone(), &fed, initial)?;
        println!(
            "{:<30} {:>12.2} {:>16.1} {:>18.4}",
            label,
            result.best_accuracy() * 100.0,
            result.total_client_seconds(),
            result.learning_efficiency()
        );
    }
    Ok(())
}
