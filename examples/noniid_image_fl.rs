//! Close-domain non-IID image federated learning (the Table II setting):
//! compares FedAvg, FedProx, their random-selection variants and FedFT-EDS on
//! a CIFAR-10-like task at two heterogeneity levels, printing one table per
//! level plus the per-round learning curve of the best method.
//!
//! Run with: `cargo run --release --example noniid_image_fl`

use fedft::analysis::Table;
use fedft::core::pretrain::pretrain_global_model;
use fedft::core::{ExecutionBackend, FlConfig, Method, RunResult, Simulation};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::{BlockNet, BlockNetConfig};

fn run_lineup(
    fed: &FederatedDataset,
    pretrained: &BlockNet,
    scratch: &BlockNet,
    rounds: usize,
) -> Result<Vec<RunResult>, Box<dyn std::error::Error>> {
    let base = FlConfig::default()
        .with_rounds(rounds)
        .with_seed(5)
        .with_execution(ExecutionBackend::Parallel);
    let mut results = Vec::new();
    for method in Method::table2_lineup(0.1) {
        let config = method.configure(base.clone());
        let initial = if method.uses_pretraining() {
            pretrained
        } else {
            scratch
        };
        results.push(Simulation::new(config)?.run_labelled(method.name(), fed, initial)?);
    }
    Ok(results)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = domains::source_imagenet32()
        .with_samples_per_class(120)
        .generate(1)?;
    let target = domains::cifar10_like()
        .with_samples_per_class(20)
        .generate(2)?;
    let model_cfg = BlockNetConfig::new(target.train.feature_dim(), target.train.num_classes());
    let pretrained = pretrain_global_model(&model_cfg, &source, 20, 7)?;
    let scratch = BlockNet::new(&model_cfg, 7);

    for alpha in [0.1, 0.5] {
        let fed = FederatedDataset::partition(
            &target.train,
            target.test.clone(),
            10,
            PartitionScheme::Dirichlet { alpha },
            3,
        )?;
        let results = run_lineup(&fed, &pretrained, &scratch, 12)?;

        let mut table = Table::new(vec![
            "Method".into(),
            "Best acc (%)".into(),
            "Efficiency (%/s)".into(),
        ]);
        for r in &results {
            table
                .add_row(vec![
                    r.label.clone(),
                    format!("{:.2}", r.best_accuracy() * 100.0),
                    format!("{:.4}", r.learning_efficiency()),
                ])
                .expect("row width matches");
        }
        println!("\nDirichlet alpha = {alpha}");
        println!("{}", table.to_plain_text());

        if let Some(best) = results
            .iter()
            .max_by(|a, b| a.best_accuracy().total_cmp(&b.best_accuracy()))
        {
            let curve: Vec<String> = best
                .accuracy_curve()
                .iter()
                .map(|a| format!("{:.1}", a * 100.0))
                .collect();
            println!("learning curve of {}: {}", best.label, curve.join(" → "));
        }
    }
    Ok(())
}
