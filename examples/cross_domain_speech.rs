//! Cross-domain federated fine-tuning (the Table IV setting): the global
//! model is pretrained on the image-family source domain and federatedly
//! fine-tuned on a speech-commands-like target whose generative map is
//! partially rotated away from the source — a stand-in for the image → audio
//! domain shift.
//!
//! Run with: `cargo run --release --example cross_domain_speech`

use fedft::core::baseline::centralised_baseline;
use fedft::core::pretrain::pretrain_global_model;
use fedft::core::{ExecutionBackend, FlConfig, Method, Simulation};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::{BlockNet, BlockNetConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = domains::source_imagenet32()
        .with_samples_per_class(120)
        .generate(1)?;
    let target = domains::speech_commands_like()
        .with_samples_per_class(20)
        .generate(2)?;
    println!(
        "target domain `{}`: {} classes, projection rotation {}",
        target.spec.name, target.spec.num_classes, target.spec.projection_rotation
    );

    let fed = FederatedDataset::partition(
        &target.train,
        target.test.clone(),
        30,
        PartitionScheme::Dirichlet { alpha: 0.1 },
        3,
    )?;
    let model_cfg = BlockNetConfig::new(target.train.feature_dim(), target.train.num_classes());
    let pretrained = pretrain_global_model(&model_cfg, &source, 20, 7)?;
    let scratch = BlockNet::new(&model_cfg, 7);

    let base = FlConfig::default()
        .with_rounds(10)
        .with_seed(13)
        .with_execution(ExecutionBackend::Parallel);
    let methods = [
        Method::FedAvgScratch,
        Method::FedAvg,
        Method::FedFtRds { pds: 0.5 },
        Method::FedFtEds { pds: 0.5 },
    ];
    for method in methods {
        let config = method.configure(base.clone());
        let initial = if method.uses_pretraining() {
            &pretrained
        } else {
            &scratch
        };
        let result = Simulation::new(config)?.run_labelled(method.name(), &fed, initial)?;
        println!(
            "{:<24} best accuracy {:>5.1}%",
            result.label,
            result.best_accuracy() * 100.0
        );
    }

    let centralised = centralised_baseline(&target, &model_cfg, Some(&pretrained), 30, 1)?;
    println!(
        "{:<24} best accuracy {:>5.1}%   (upper bound)",
        "Centralised",
        centralised.test_accuracy * 100.0
    );
    Ok(())
}
