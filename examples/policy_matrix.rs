//! The policy layer in miniature: pluggable data-selection policies,
//! weighted client-selection policies and per-tier freeze levels, run
//! side by side on one small two-tier federated task.
//!
//! The first row is the paper's FedFT-EDS defaults — entropy data
//! selection, uniform client sampling, one global freeze level. Spelling
//! those defaults out explicitly (`with_client_selection(Uniform)`) is
//! bit-identical to not mentioning them at all: the policy layer's
//! bit-identity contract, asserted at the end. Every other row changes
//! exactly one policy axis and produces a genuinely different run.
//!
//! Run with: `cargo run --release --example policy_matrix`

use fedft::core::pretrain::pretrain_global_model;
use fedft::core::{
    ClientSelection, ExecutionBackend, FlConfig, HeterogeneityModel, Method, RunResult,
    SelectionStrategy, Simulation,
};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::{BlockNetConfig, FreezeLevel};

const CLIENTS: usize = 12;
const ROUNDS: usize = 5;
const PDS: f64 = 0.5;
const SEED: u64 = 17;

fn describe(result: &RunResult) {
    println!(
        "{:<28} {:>8.2} {:>8.1} {:>9.1}",
        result.label,
        result.best_accuracy() * 100.0,
        result.mean_participants(),
        result.total_wall_seconds(),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = domains::source_imagenet32()
        .with_samples_per_class(60)
        .generate(1)?;
    let target = domains::cifar10_like()
        .with_samples_per_class(24)
        .generate(2)?;
    let fed = FederatedDataset::partition(
        &target.train,
        target.test.clone(),
        CLIENTS,
        PartitionScheme::Dirichlet { alpha: 0.3 },
        SEED,
    )?;
    let model_cfg = BlockNetConfig::new(target.train.feature_dim(), target.train.num_classes());
    let global = pretrain_global_model(&model_cfg, &source, 4, SEED)?;

    // Partial participation on a two-tier mix: with everyone selected every
    // round, the client-selection policies would all collapse onto uniform.
    let base = Method::FedFtEds { pds: PDS }
        .configure(FlConfig::default().with_rounds(ROUNDS).with_seed(SEED))
        .with_participation(0.5)
        .with_heterogeneity(HeterogeneityModel::two_tier())
        .with_execution(ExecutionBackend::Parallel);

    let rows: Vec<(&str, FlConfig)> = vec![
        ("eds (baseline)", base.clone()),
        (
            "data: loss-proportional",
            base.clone()
                .with_selection(SelectionStrategy::LossProportional { fraction: PDS }),
        ),
        (
            "data: gradient-norm",
            base.clone()
                .with_selection(SelectionStrategy::GradientNorm { fraction: PDS }),
        ),
        (
            "client: tier-aware",
            base.clone()
                .with_client_selection(ClientSelection::TierAware),
        ),
        (
            "client: similarity",
            base.clone()
                .with_client_selection(ClientSelection::SimilarityAware),
        ),
        (
            "tier-freeze (slow=head)",
            base.clone()
                .with_tier_freeze(vec![FreezeLevel::Moderate, FreezeLevel::Classifier]),
        ),
    ];

    println!(
        "{:<28} {:>8} {:>8} {:>9}",
        "policy", "best%", "clients", "wall s"
    );
    let mut results = Vec::new();
    for (label, config) in rows {
        let result = Simulation::new(config)?.run_labelled(label.to_string(), &fed, &global)?;
        describe(&result);
        results.push(result);
    }

    // Bit-identity contract: naming the default policies explicitly is the
    // same run as the baseline, to the last bit of every round record.
    let explicit_defaults = base
        .with_selection(SelectionStrategy::Entropy {
            fraction: PDS,
            temperature: 0.1,
        })
        .with_client_selection(ClientSelection::Uniform);
    let replay =
        Simulation::new(explicit_defaults)?.run_labelled("eds (baseline)", &fed, &global)?;
    assert_eq!(
        replay.learning_history(),
        results[0].learning_history(),
        "explicit default policies must be bit-identical to the baseline"
    );
    println!("\nexplicit default policies reproduce the baseline bit-exactly");

    // And every non-default policy actually changes the run.
    for result in &results[1..] {
        assert_ne!(
            result.learning_history(),
            results[0].learning_history(),
            "{} must diverge from the baseline",
            result.label
        );
    }
    println!("every non-default policy diverges from the baseline");
    Ok(())
}
