//! Logical client pools over a shared, byte-budgeted cache registry.
//!
//! The same 8-shard federated task is run as pools of 8, 80 and 800
//! *logical* clients (logical client `i` holds physical shard `i % 8`),
//! with the frozen-feature cache on. Under the shared `CacheRegistry`
//! every client holding the same shard resolves to one cached copy of the
//! boundary activations, so **peak cache bytes stay flat while the cohort
//! grows 100×** — the sweep prints the per-run hit/miss/peak counters to
//! show it. A per-client-scope run of the largest pool is included as the
//! contrast: same history, bit for bit, but cache memory scales with
//! clients instead of shards.
//!
//! Run with: `cargo run --release --example logical_pool`

use fedft::core::{CacheScope, FlConfig, Method, RunResult, Simulation};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::{BlockNet, BlockNetConfig};

const SHARDS: usize = 8;
const ROUNDS: usize = 3;
const SEED: u64 = 17;
/// Every round samples about this many logical clients, however large the
/// pool is, so the sweep's compute stays constant while the cohort grows.
const PARTICIPANTS_PER_ROUND: usize = 8;

fn describe(label: &str, result: &RunResult) {
    println!(
        "{label:<24} {:>8.2} {:>9.1} {:>7} {:>7} {:>7} {:>12}",
        result.best_accuracy() * 100.0,
        result.mean_participants(),
        result.total_cache_hits(),
        result.total_cache_misses(),
        result.total_cache_evictions(),
        result.peak_cache_bytes(),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target = domains::cifar10_like()
        .with_samples_per_class(24)
        .with_test_samples_per_class(6)
        .generate(2)?;
    let fed = FederatedDataset::partition(
        &target.train,
        target.test.clone(),
        SHARDS,
        PartitionScheme::Dirichlet { alpha: 0.5 },
        3,
    )?;
    let model_cfg = BlockNetConfig::new(target.train.feature_dim(), target.train.num_classes())
        .with_hidden(24, 24, 24);
    let model = BlockNet::new(&model_cfg, 5);

    let base = |logical: usize| {
        Method::FedFtEds { pds: 0.5 }.configure(
            FlConfig::default()
                .with_rounds(ROUNDS)
                .with_local_epochs(1)
                .with_batch_size(16)
                .with_seed(SEED)
                .with_logical_clients(logical)
                .with_participation(PARTICIPANTS_PER_ROUND as f64 / logical as f64)
                .with_feature_cache(true)
                .serial(),
        )
    };

    println!(
        "{SHARDS} physical shards, Dirichlet(0.5), {ROUNDS} rounds, \
         ~{PARTICIPANTS_PER_ROUND} participants per round\n"
    );
    println!(
        "{:<24} {:>8} {:>9} {:>7} {:>7} {:>7} {:>12}",
        "pool", "acc (%)", "clients", "hits", "misses", "evicts", "peak bytes"
    );

    let mut shared_peak = 0usize;
    for logical in [SHARDS, 10 * SHARDS, 100 * SHARDS] {
        let result = Simulation::new(base(logical))?.run_labelled(
            format!("{logical} logical (shared)"),
            &fed,
            &model,
        )?;
        shared_peak = shared_peak.max(result.peak_cache_bytes());
        describe(&result.label.clone(), &result);
    }

    // The contrast: the largest pool again, but with one private cache per
    // client. The history is identical; only the memory differs.
    let per_client_cfg = base(100 * SHARDS).with_cache_scope(CacheScope::PerClient);
    let per_client =
        Simulation::new(per_client_cfg)?.run_labelled("800 logical (per-client)", &fed, &model)?;
    describe(&per_client.label.clone(), &per_client);

    let shared_800 = Simulation::new(base(100 * SHARDS))?.run_labelled("x", &fed, &model)?;
    assert_eq!(
        shared_800.learning_history(),
        per_client.learning_history(),
        "shared and per-client caches must replay one history"
    );
    println!(
        "\nShared-registry peak stays at {shared_peak} bytes (≤ one entry per\n\
         distinct shard) while the pool grows 100×; per-client caches hold\n\
         {} bytes for the same run — the dedup factor for this sweep is {:.1}×.",
        per_client.peak_cache_bytes(),
        per_client.peak_cache_bytes() as f64 / shared_800.peak_cache_bytes().max(1) as f64
    );
    Ok(())
}
