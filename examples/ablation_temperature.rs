//! Hardened-softmax temperature ablation (the Figure 10c setting): sweeps the
//! softmax temperature ρ used by entropy-based data selection and compares
//! against random selection. Temperatures below 1 ("hardened") make the
//! high-entropy samples easier to separate and should match or beat random
//! selection; temperatures above 1 ("softened") blur the ranking.
//!
//! Run with: `cargo run --release --example ablation_temperature`

use fedft::core::pretrain::pretrain_global_model;
use fedft::core::{ExecutionBackend, FlConfig, SelectionStrategy, Simulation};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::BlockNetConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = domains::source_imagenet32()
        .with_samples_per_class(120)
        .generate(1)?;
    let target = domains::cifar100_like()
        .with_samples_per_class(8)
        .generate(2)?;
    let fed = FederatedDataset::partition(
        &target.train,
        target.test.clone(),
        20,
        PartitionScheme::Dirichlet { alpha: 0.1 },
        3,
    )?;
    let model_cfg = BlockNetConfig::new(target.train.feature_dim(), target.train.num_classes());
    let global = pretrain_global_model(&model_cfg, &source, 20, 7)?;

    let base = FlConfig::default()
        .with_rounds(8)
        .with_seed(17)
        .with_execution(ExecutionBackend::Parallel);

    // Baseline: random selection at the same proportion.
    let rds_config = base
        .clone()
        .with_selection(SelectionStrategy::Random { fraction: 0.5 });
    let rds = Simulation::new(rds_config)?.run_labelled("FedFT-RDS (50%)", &fed, &global)?;
    println!(
        "{:<26} best accuracy {:>5.1}%",
        rds.label,
        rds.best_accuracy() * 100.0
    );

    for temperature in [0.01_f32, 0.1, 0.5, 1.0, 2.0, 5.0] {
        let config = base.clone().with_selection(SelectionStrategy::Entropy {
            fraction: 0.5,
            temperature,
        });
        let label = format!("FedFT-EDS (50%), rho={temperature}");
        let result = Simulation::new(config)?.run_labelled(label.clone(), &fed, &global)?;
        println!(
            "{:<26} best accuracy {:>5.1}%",
            label,
            result.best_accuracy() * 100.0
        );
    }
    Ok(())
}
