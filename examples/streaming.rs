//! Streaming serving mode: rounds become continuous buffered traffic.
//!
//! A production FL server does not run lockstep rounds — it ingests a
//! continuous stream of updates from whoever is online and aggregates
//! FedBuff-style: every `K` buffered updates or `T` simulated seconds,
//! whichever comes first. The `StreamingExecutor` models exactly that on
//! the event-driven simulated clock: a 24-client two-tier pool under a
//! sweep of streaming configurations, from the degenerate one (buffer as
//! deep as the cohort, steady arrivals, staleness bound 0 — bit-identical
//! to `SequentialExecutor`, asserted below) to shallow buffers over bursty
//! arrival processes, where fast devices flush early and stragglers are
//! carried into later flush intervals.
//!
//! Run with: `cargo run --release --example streaming`

use fedft::core::pretrain::pretrain_global_model;
use fedft::core::{
    ArrivalModel, FlConfig, HeterogeneityModel, Method, Simulation, StreamingParams,
};
use fedft::data::federated::PartitionScheme;
use fedft::data::{domains, FederatedDataset};
use fedft::nn::BlockNetConfig;

const CLIENTS: usize = 24;
const ROUNDS: usize = 8;
const SEED: u64 = 11;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = domains::source_imagenet32()
        .with_samples_per_class(80)
        .generate(1)?;
    let target = domains::cifar10_like()
        .with_samples_per_class(32)
        .generate(2)?;
    let fed = FederatedDataset::partition(
        &target.train,
        target.test.clone(),
        CLIENTS,
        PartitionScheme::Dirichlet { alpha: 0.5 },
        3,
    )?;
    let model_cfg = BlockNetConfig::new(target.train.feature_dim(), target.train.num_classes());
    let pretrained = pretrain_global_model(&model_cfg, &source, 15, 7)?;

    let base = Method::FedFtEds { pds: 0.1 }.configure(
        FlConfig::default()
            .with_rounds(ROUNDS)
            .with_local_epochs(2)
            .with_seed(SEED)
            .with_heterogeneity(HeterogeneityModel::two_tier()),
    );

    // The synchronous reference every streaming run is compared against.
    let sequential =
        Simulation::new(base.clone().serial())?.run_labelled("seq", &fed, &pretrained)?;
    let sync_wall = sequential.total_wall_seconds();

    println!(
        "{CLIENTS} clients, two-tier mix, full participation, {ROUNDS} flush intervals\n\
         synchronous wall clock: {sync_wall:.1}s simulated\n"
    );
    println!(
        "{:<16} {:>8} {:>10} {:>9} {:>9} {:>11} {:>10}",
        "config", "acc (%)", "wall (s)", "updates", "carried", "mean stale", "flushes"
    );
    let burst = ArrivalModel::Burst {
        mean_offset_seconds: 2.0,
    };
    let sweeps: Vec<(String, StreamingParams)> = vec![
        // Degenerate: one full synchronous round per flush.
        ("degenerate".into(), StreamingParams::new(CLIENTS)),
        // Shallow buffer: flush the fastest half, carry the stragglers.
        (
            format!("K={}", CLIENTS / 2),
            StreamingParams::new(CLIENTS / 2).with_max_staleness(2),
        ),
        // Shallow buffer over bursty arrivals: realistic churn.
        (
            format!("K={} burst", CLIENTS / 2),
            StreamingParams::new(CLIENTS / 2)
                .with_max_staleness(2)
                .with_arrival(burst),
        ),
        // Timer-driven: flush on schedule, whatever has arrived.
        (
            "K=∞ T=5s".into(),
            StreamingParams::new(10 * CLIENTS)
                .with_flush_seconds(5.0)
                .with_max_staleness(2)
                .with_arrival(burst),
        ),
    ];
    for (label, params) in sweeps {
        let config = base.clone().with_streaming(params);
        let result = Simulation::new(config)?.run_labelled(label.clone(), &fed, &pretrained)?;
        if params == StreamingParams::new(CLIENTS) {
            // The determinism contract: the degenerate streaming config
            // reproduces the sequential learning history bit for bit.
            assert_eq!(
                result.learning_history(),
                sequential.learning_history(),
                "degenerate streaming must match the sequential history"
            );
        }
        println!(
            "{label:<16} {:>8.2} {:>10.1} {:>9} {:>9} {:>11.2} {:>10}",
            result.best_accuracy() * 100.0,
            result.total_wall_seconds(),
            result.total_aggregated_updates(),
            result.total_carried_updates(),
            result.mean_update_staleness(),
            result.flush_count(),
        );
    }
    println!(
        "\nThe degenerate configuration (K = cohort, steady arrivals,\n\
         staleness 0) is bit-identical to the sequential backend (asserted\n\
         above). Shallower buffers flush as soon as the fastest K updates\n\
         arrive — carried stragglers aggregate in later intervals at their\n\
         actual staleness, discounted by 1/(1+s) — and a flush timer closes\n\
         intervals on schedule regardless of how many updates arrived."
    );
    Ok(())
}
